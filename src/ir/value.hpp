// Value hierarchy for the AutoPhase IR: constants, undef, function
// arguments, global variables, and instructions (declared in
// instruction.hpp). Non-constant values keep a use list (the instructions
// referencing them, with multiplicity) so passes can run
// replace_all_uses_with / dead-value queries efficiently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hpp"
#include "support/arena.hpp"

namespace autophase::ir {

class Instruction;
class Function;

enum class ValueKind {
  kConstantInt,
  kUndef,
  kArgument,
  kGlobalVariable,
  kInstruction,
};

class Value {
 public:
  virtual ~Value() = default;

  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  /// IR nodes allocate from the ambient support::Arena when a rollout
  /// clone's ArenaScope is active; a per-allocation tag makes delete a no-op
  /// for arena-backed nodes, so unique_ptr ownership works unchanged for
  /// heap- and arena-backed values alike (including all subclasses).
  static void* operator new(std::size_t size) { return support::arena_aware_allocate(size); }
  static void operator delete(void* ptr) noexcept { support::arena_aware_deallocate(ptr); }

  [[nodiscard]] ValueKind value_kind() const noexcept { return value_kind_; }
  [[nodiscard]] Type* type() const noexcept { return type_; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] bool is_constant() const noexcept {
    return value_kind_ == ValueKind::kConstantInt || value_kind_ == ValueKind::kUndef;
  }

  /// Instructions currently using this value, one entry per operand slot
  /// (so a value used twice by one instruction appears twice). Constants do
  /// not track users (they are interned and shared).
  [[nodiscard]] const std::vector<Instruction*>& users() const noexcept { return users_; }

  [[nodiscard]] bool has_users() const noexcept { return !users_.empty(); }

  /// Rewrites every operand slot referencing this value to reference
  /// `replacement` instead. Not valid on constants.
  void replace_all_uses_with(Value* replacement);

 protected:
  Value(ValueKind kind, Type* type, std::string name)
      : value_kind_(kind), type_(type), name_(std::move(name)) {}

 private:
  friend class Instruction;

  [[nodiscard]] bool tracks_users() const noexcept { return !is_constant(); }

  void add_user(Instruction* user) {
    if (tracks_users()) users_.push_back(user);
  }
  void remove_user(Instruction* user);

  ValueKind value_kind_;
  Type* type_;
  std::string name_;
  std::vector<Instruction*> users_;
};

/// Integer constant. Interned per Module (see Module::get_int); always
/// compared by pointer within one module.
class ConstantInt final : public Value {
 public:
  ConstantInt(Type* type, std::int64_t value)
      : Value(ValueKind::kConstantInt, type, ""), value_(value) {}

  /// Sign-extended 64-bit view of the constant.
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

  [[nodiscard]] bool is_zero() const noexcept { return value_ == 0; }
  [[nodiscard]] bool is_one() const noexcept { return value_ == 1; }

  /// True if the (unsigned) value is a power of two.
  [[nodiscard]] bool is_power_of_two() const noexcept {
    const auto u = static_cast<std::uint64_t>(value_);
    return u != 0 && (u & (u - 1)) == 0;
  }

 private:
  std::int64_t value_;
};

/// Undefined value of a given type (result of reading uninitialised state).
class Undef final : public Value {
 public:
  explicit Undef(Type* type) : Value(ValueKind::kUndef, type, "") {}
};

/// Formal parameter of a function.
class Argument final : public Value {
 public:
  Argument(Type* type, std::string name, Function* parent, unsigned index)
      : Value(ValueKind::kArgument, type, std::move(name)), parent_(parent), index_(index) {}

  [[nodiscard]] Function* parent() const noexcept { return parent_; }
  [[nodiscard]] unsigned index() const noexcept { return index_; }
  void set_index(unsigned index) noexcept { index_ = index; }

 private:
  Function* parent_;
  unsigned index_;
};

/// Module-level array of integers (lookup tables, buffers). The value itself
/// has pointer type (it denotes the address), like LLVM globals.
class GlobalVariable final : public Value {
 public:
  GlobalVariable(Type* element_type, std::size_t element_count, std::string name,
                 std::vector<std::int64_t> init, bool is_constant_data)
      : Value(ValueKind::kGlobalVariable, Type::pointer_to(element_type), std::move(name)),
        element_type_(element_type),
        element_count_(element_count),
        init_(std::move(init)),
        is_constant_data_(is_constant_data) {}

  [[nodiscard]] Type* element_type() const noexcept { return element_type_; }
  [[nodiscard]] std::size_t element_count() const noexcept { return element_count_; }

  /// Initial element values; empty means zero-initialised.
  [[nodiscard]] const std::vector<std::int64_t>& init() const noexcept { return init_; }

  /// True if no store may target this global (a ROM / lookup table).
  [[nodiscard]] bool is_constant_data() const noexcept { return is_constant_data_; }
  void set_constant_data(bool value) noexcept { is_constant_data_ = value; }

  [[nodiscard]] std::size_t size_in_bytes() const noexcept {
    return element_count_ * element_type_->size_in_bytes();
  }

 private:
  Type* element_type_;
  std::size_t element_count_;
  std::vector<std::int64_t> init_;
  bool is_constant_data_;
};

/// Downcast helpers (LLVM-style dyn_cast, without RTTI).
inline ConstantInt* as_constant_int(Value* v) noexcept {
  return v != nullptr && v->value_kind() == ValueKind::kConstantInt ? static_cast<ConstantInt*>(v)
                                                                    : nullptr;
}
inline const ConstantInt* as_constant_int(const Value* v) noexcept {
  return v != nullptr && v->value_kind() == ValueKind::kConstantInt
             ? static_cast<const ConstantInt*>(v)
             : nullptr;
}
inline GlobalVariable* as_global(Value* v) noexcept {
  return v != nullptr && v->value_kind() == ValueKind::kGlobalVariable
             ? static_cast<GlobalVariable*>(v)
             : nullptr;
}
inline Argument* as_argument(Value* v) noexcept {
  return v != nullptr && v->value_kind() == ValueKind::kArgument ? static_cast<Argument*>(v)
                                                                 : nullptr;
}

}  // namespace autophase::ir
