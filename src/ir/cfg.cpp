#include "ir/cfg.hpp"

#include <algorithm>
#include <cassert>

#include "ir/module.hpp"

namespace autophase::ir {

namespace {

void post_order_visit(BasicBlock* bb, std::unordered_set<BasicBlock*>& visited,
                      std::vector<BasicBlock*>& out) {
  // Iterative DFS; successor order preserved for determinism.
  struct Frame {
    BasicBlock* bb;
    std::vector<BasicBlock*> succs;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  visited.insert(bb);
  stack.push_back({bb, bb->successors()});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next < top.succs.size()) {
      BasicBlock* s = top.succs[top.next++];
      if (visited.insert(s).second) stack.push_back({s, s->successors()});
    } else {
      out.push_back(top.bb);
      stack.pop_back();
    }
  }
}

}  // namespace

std::vector<BasicBlock*> post_order(Function& f) {
  std::vector<BasicBlock*> out;
  std::unordered_set<BasicBlock*> visited;
  if (f.entry() != nullptr) post_order_visit(f.entry(), visited, out);
  return out;
}

std::vector<BasicBlock*> reverse_post_order(Function& f) {
  auto out = post_order(f);
  std::reverse(out.begin(), out.end());
  return out;
}

std::unordered_set<BasicBlock*> reachable_blocks(Function& f) {
  std::unordered_set<BasicBlock*> visited;
  std::vector<BasicBlock*> out;
  if (f.entry() != nullptr) post_order_visit(f.entry(), visited, out);
  return visited;
}

std::size_t remove_unreachable_blocks(Function& f) {
  const auto reachable = reachable_blocks(f);
  std::vector<BasicBlock*> dead;
  for (BasicBlock* bb : f.blocks()) {
    if (!reachable.contains(bb)) dead.push_back(bb);
  }
  if (dead.empty()) return 0;

  const std::unordered_set<BasicBlock*> dead_set(dead.begin(), dead.end());
  // Fix survivors: drop phi incomings from dead blocks.
  for (BasicBlock* bb : f.blocks()) {
    if (dead_set.contains(bb)) continue;
    for (Instruction* phi : bb->phis()) {
      for (int i = static_cast<int>(phi->incoming_count()) - 1; i >= 0; --i) {
        if (dead_set.contains(phi->incoming_block(static_cast<std::size_t>(i)))) {
          phi->remove_incoming(static_cast<std::size_t>(i));
        }
      }
    }
  }
  // Replace any live use of a value defined in a dead block with undef.
  Module* m = f.parent();
  for (BasicBlock* bb : dead) {
    for (Instruction* inst : bb->instructions()) {
      if (inst->type()->is_void() || !inst->has_users()) continue;
      // Only external (live-block) users matter; internal ones die together.
      inst->replace_all_uses_with(m->get_undef(inst->type()));
    }
  }
  // Dead blocks may branch to each other: unregister every cross-reference
  // while all of them are still alive, then destroy (drop is idempotent, so
  // erase_block's own drop becomes a no-op).
  for (BasicBlock* bb : dead) bb->drop_all_references();
  for (BasicBlock* bb : dead) f.erase_block(bb);
  return dead.size();
}

bool is_critical_edge(BasicBlock* from, BasicBlock* to) {
  Instruction* term = from->terminator();
  if (term == nullptr || term->successor_count() < 2) return false;
  // The edge must actually (still) exist — a prior split of a multi-slot
  // edge (switch cases sharing a target) removes every slot at once.
  bool targets_to = false;
  for (std::size_t i = 0; i < term->successor_count(); ++i) {
    if (term->successor(i) == to) targets_to = true;
  }
  if (!targets_to) return false;
  return to->unique_predecessors().size() > 1;
}

BasicBlock* split_edge(BasicBlock* from, BasicBlock* to, const std::string& name) {
  Function* f = from->parent();
  BasicBlock* mid = f->create_block_after(from, name);
  Instruction* term = from->terminator();
  assert(term != nullptr);
  term->replace_successor(to, mid);
  mid->push_back(Instruction::br(to));
  for (Instruction* phi : to->phis()) phi->replace_incoming_block(from, mid);
  return mid;
}

BasicBlock* merge_block_into_predecessor(BasicBlock* bb) {
  const auto preds = bb->unique_predecessors();
  if (preds.size() != 1) return nullptr;
  BasicBlock* pred = preds.front();
  if (pred == bb) return nullptr;
  Instruction* pterm = pred->terminator();
  if (pterm == nullptr || pterm->opcode() != Opcode::kBr) return nullptr;
  Function* f = bb->parent();

  // Phis in bb have a single incoming value now; fold them.
  for (Instruction* phi : bb->phis()) {
    assert(phi->incoming_count() == 1);
    Value* incoming = phi->incoming_value(0);
    // A single-entry phi may reference itself only in dead code; map that to undef.
    if (incoming == phi) incoming = f->parent()->get_undef(phi->type());
    phi->replace_all_uses_with(incoming);
    bb->erase(phi);
  }
  // Remove pred's terminator, splice bb's instructions across.
  pred->erase(pterm);
  while (!bb->empty()) {
    auto inst = bb->take(bb->front());
    pred->push_back(std::move(inst));
  }
  // Successors' phis referenced bb; they now flow from pred.
  for (BasicBlock* succ : pred->successors()) {
    for (Instruction* phi : succ->phis()) phi->replace_incoming_block(bb, pred);
  }
  f->erase_block(bb);
  return pred;
}

std::vector<Instruction*> collect_call_sites(Module& m, const Function* f) {
  std::vector<Instruction*> out;
  for (Function* caller : m.functions()) {
    for (BasicBlock* bb : caller->blocks()) {
      for (Instruction* inst : bb->instructions()) {
        if (inst->opcode() == Opcode::kCall && inst->callee() == f) out.push_back(inst);
      }
    }
  }
  return out;
}

std::size_t edge_count(const Function& f) {
  std::size_t n = 0;
  for (BasicBlock* bb : f.blocks()) {
    Instruction* term = bb->terminator();
    if (term != nullptr) n += term->successor_count();
  }
  return n;
}

}  // namespace autophase::ir
