// IRBuilder: convenience layer for constructing IR (used by the program
// generators, the CHStone-like kernels, tests, and passes that synthesise
// code). Appends at the insert block's end; emits exactly what is asked for
// (no folding — canonicalisation is the optimiser's job, and the RL problem
// needs unoptimised -O0 input).
#pragma once

#include <string>
#include <vector>

#include "ir/module.hpp"

namespace autophase::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(&module) {}

  [[nodiscard]] Module& module() const noexcept { return *module_; }
  [[nodiscard]] BasicBlock* insert_block() const noexcept { return block_; }
  void set_insert_point(BasicBlock* block) noexcept { block_ = block; }

  // ---- Constants ----
  ConstantInt* i1(bool v) { return module_->get_i1(v); }
  ConstantInt* i32(std::int64_t v) { return module_->get_i32(v); }
  ConstantInt* i64(std::int64_t v) { return module_->get_i64(v); }
  ConstantInt* int_const(Type* t, std::int64_t v) { return module_->get_int(t, v); }

  // ---- Value ops ----
  Value* binary(Opcode op, Value* a, Value* b, std::string name = "");
  Value* add(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kAdd, a, b, std::move(name));
  }
  Value* sub(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kSub, a, b, std::move(name));
  }
  Value* mul(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kMul, a, b, std::move(name));
  }
  Value* sdiv(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kSDiv, a, b, std::move(name));
  }
  Value* udiv(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kUDiv, a, b, std::move(name));
  }
  Value* srem(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kSRem, a, b, std::move(name));
  }
  Value* urem(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kURem, a, b, std::move(name));
  }
  Value* and_(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kAnd, a, b, std::move(name));
  }
  Value* or_(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kOr, a, b, std::move(name));
  }
  Value* xor_(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kXor, a, b, std::move(name));
  }
  Value* shl(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kShl, a, b, std::move(name));
  }
  Value* lshr(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kLShr, a, b, std::move(name));
  }
  Value* ashr(Value* a, Value* b, std::string name = "") {
    return binary(Opcode::kAShr, a, b, std::move(name));
  }

  Value* icmp(ICmpPred pred, Value* a, Value* b, std::string name = "");
  Value* icmp_eq(Value* a, Value* b, std::string name = "") {
    return icmp(ICmpPred::kEq, a, b, std::move(name));
  }
  Value* icmp_ne(Value* a, Value* b, std::string name = "") {
    return icmp(ICmpPred::kNe, a, b, std::move(name));
  }
  Value* icmp_slt(Value* a, Value* b, std::string name = "") {
    return icmp(ICmpPred::kSlt, a, b, std::move(name));
  }
  Value* icmp_sle(Value* a, Value* b, std::string name = "") {
    return icmp(ICmpPred::kSle, a, b, std::move(name));
  }
  Value* icmp_sgt(Value* a, Value* b, std::string name = "") {
    return icmp(ICmpPred::kSgt, a, b, std::move(name));
  }
  Value* icmp_sge(Value* a, Value* b, std::string name = "") {
    return icmp(ICmpPred::kSge, a, b, std::move(name));
  }

  Value* zext(Value* v, Type* to, std::string name = "");
  Value* sext(Value* v, Type* to, std::string name = "");
  Value* trunc(Value* v, Type* to, std::string name = "");
  Value* bitcast(Value* v, Type* to, std::string name = "");
  Value* select(Value* cond, Value* if_true, Value* if_false, std::string name = "");
  Instruction* phi(Type* type, std::string name = "");

  // ---- Memory ----
  Instruction* alloca_scalar(Type* element_type, std::string name = "");
  Instruction* alloca_array(Type* element_type, std::size_t count, std::string name = "");
  Value* load(Value* pointer, std::string name = "");
  Instruction* store(Value* value, Value* pointer);
  Value* gep(Value* pointer, Value* index, std::string name = "");
  Instruction* mem_set(Value* dst, Value* value, Value* count);
  Instruction* mem_cpy(Value* dst, Value* src, Value* count);

  // ---- Calls / control flow ----
  Value* call(Function* callee, std::vector<Value*> args, std::string name = "");
  Instruction* br(BasicBlock* target);
  Instruction* cond_br(Value* cond, BasicBlock* if_true, BasicBlock* if_false);
  Instruction* switch_inst(Value* value, BasicBlock* default_dest);
  Instruction* ret(Value* value);
  Instruction* ret_void() { return ret(nullptr); }

 private:
  Instruction* append(std::unique_ptr<Instruction> inst);

  Module* module_;
  BasicBlock* block_ = nullptr;
};

}  // namespace autophase::ir
