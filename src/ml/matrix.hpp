// Minimal dense row-major matrix for the policy/value networks. The paper's
// networks are 256x256 fully-connected MLPs — small enough that a clean
// cache-friendly triple loop outperforms anything fancier at this scale.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace autophase::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// Adopts an existing row-major buffer (must be rows*cols long) — lets
  /// batch gatherers hand their staging buffer straight to the network
  /// without a copy.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  static Matrix zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols); }

  /// Gaussian init scaled for tanh nets (Xavier-ish).
  static Matrix randn(Rng& rng, std::size_t rows, std::size_t cols, double stddev);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  // ---- In-place arithmetic ----
  Matrix& operator+=(const Matrix& other);
  Matrix& operator*=(double s);
  /// this += other * s (axpy).
  void add_scaled(const Matrix& other, double s);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a @ b.
Matrix matmul(const Matrix& a, const Matrix& b);
/// out = a^T @ b.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// out = a @ b^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

}  // namespace autophase::ml
