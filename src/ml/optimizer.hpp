// Optimisers for the policy/value networks: Adam (used by PPO as in RLlib's
// defaults) and plain SGD (used by the A3C workers' shared updates).
#pragma once

#include "ml/mlp.hpp"

namespace autophase::ml {

class Adam {
 public:
  struct Config {
    double lr = 5e-4;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double max_grad_norm = 10.0;  ///< global-norm clip; <=0 disables
  };

  Adam(const Mlp& model, Config config);

  /// Applies one descent step for loss gradients `grads` (minimisation).
  void step(Mlp& model, const Gradients& grads);

 private:
  Config config_;
  Gradients m_;
  Gradients v_;
  std::size_t t_ = 0;
};

class Sgd {
 public:
  struct Config {
    double lr = 1e-3;
    double max_grad_norm = 10.0;
  };

  explicit Sgd(Config config) : config_(config) {}

  void step(Mlp& model, const Gradients& grads) const;

 private:
  Config config_;
};

}  // namespace autophase::ml
