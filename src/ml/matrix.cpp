#include "ml/matrix.hpp"

#include <algorithm>

namespace autophase::ml {

Matrix Matrix::randn(Rng& rng, std::size_t rows, std::size_t cols, double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.normal(0.0, stddev);
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

void Matrix::add_scaled(const Matrix& other, double s) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i] * s;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  // Row-blocked: with k in the middle, one row of B streams through every
  // row of the tile while it is hot in cache, cutting B traffic by the tile
  // height (the classic loop re-reads all of B for every row of A). Each
  // output element still accumulates over k in ascending order with the
  // same zero-skip as before, so results stay bit-identical — the
  // PolicyBatcher's row-identity contract depends on that.
  constexpr std::size_t kRowTile = 8;
  const std::size_t n = b.cols();
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += kRowTile) {
    const std::size_t i1 = std::min(i0 + kRowTile, a.rows());
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double* brow = b.row(k);
      for (std::size_t i = i0; i < i1; ++i) {
        const double av = a.row(i)[k];
        if (av == 0.0) continue;
        double* orow = out.row(i);
        for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  }
  return out;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row(k);
    const double* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* orow = out.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
  return out;
}

}  // namespace autophase::ml
