#include "ml/matrix.hpp"

#include <algorithm>

namespace autophase::ml {

Matrix Matrix::randn(Rng& rng, std::size_t rows, std::size_t cols, double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.normal(0.0, stddev);
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

void Matrix::add_scaled(const Matrix& other, double s) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i] * s;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* orow = out.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double av = arow[k];
      if (av == 0.0) continue;
      const double* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row(k);
    const double* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* orow = out.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
  return out;
}

}  // namespace autophase::ml
