#include "ml/optimizer.hpp"

#include <cmath>

namespace autophase::ml {

namespace {

/// Returns the multiplier that clips `grads` to `max_norm` (1.0 when inside).
double clip_scale(const Gradients& grads, double max_norm) {
  if (max_norm <= 0.0) return 1.0;
  const double norm = grads.l2_norm();
  return norm > max_norm ? max_norm / norm : 1.0;
}

}  // namespace

Adam::Adam(const Mlp& model, Config config)
    : config_(config), m_(model.make_gradients()), v_(model.make_gradients()) {}

void Adam::step(Mlp& model, const Gradients& grads) {
  ++t_;
  const double clip = clip_scale(grads, config_.max_grad_norm);
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));

  Gradients update = model.make_gradients();
  auto update_block = [&](Matrix& m, Matrix& v, const Matrix& g, Matrix& out) {
    for (std::size_t i = 0; i < m.data().size(); ++i) {
      const double gi = g.data()[i] * clip;
      m.data()[i] = config_.beta1 * m.data()[i] + (1.0 - config_.beta1) * gi;
      v.data()[i] = config_.beta2 * v.data()[i] + (1.0 - config_.beta2) * gi * gi;
      const double mhat = m.data()[i] / bc1;
      const double vhat = v.data()[i] / bc2;
      out.data()[i] = mhat / (std::sqrt(vhat) + config_.epsilon);
    }
  };
  for (std::size_t l = 0; l < update.weights.size(); ++l) {
    update_block(m_.weights[l], v_.weights[l], grads.weights[l], update.weights[l]);
    update_block(m_.biases[l], v_.biases[l], grads.biases[l], update.biases[l]);
  }
  model.apply_delta(update, -config_.lr);
}

void Sgd::step(Mlp& model, const Gradients& grads) const {
  const double clip = clip_scale(grads, config_.max_grad_norm);
  Gradients g = grads;
  g.scale(clip);
  model.apply_delta(g, -config_.lr);
}

}  // namespace autophase::ml
