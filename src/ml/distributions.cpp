#include "ml/distributions.hpp"

#include <algorithm>
#include <cmath>

namespace autophase::ml {

std::vector<double> softmax(const double* logits, std::size_t n) {
  std::vector<double> out(n);
  const double mx = *std::max_element(logits, logits + n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::exp(logits[i] - mx);
    sum += out[i];
  }
  for (double& v : out) v /= sum;
  return out;
}

double log_prob(const double* logits, std::size_t n, std::size_t index) {
  const double mx = *std::max_element(logits, logits + n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::exp(logits[i] - mx);
  return logits[index] - mx - std::log(sum);
}

double entropy(const double* logits, std::size_t n) {
  const auto p = softmax(logits, n);
  double h = 0.0;
  for (const double pi : p) {
    if (pi > 1e-12) h -= pi * std::log(pi);
  }
  return h;
}

std::size_t sample(const double* logits, std::size_t n, Rng& rng) {
  const auto p = softmax(logits, n);
  double x = rng.uniform();
  for (std::size_t i = 0; i < n; ++i) {
    if (x < p[i]) return i;
    x -= p[i];
  }
  return n - 1;
}

std::size_t argmax(const double* logits, std::size_t n) {
  return static_cast<std::size_t>(std::max_element(logits, logits + n) - logits);
}

void log_prob_grad(const double* logits, std::size_t n, std::size_t index, double* out) {
  const auto p = softmax(logits, n);
  for (std::size_t i = 0; i < n; ++i) out[i] = (i == index ? 1.0 : 0.0) - p[i];
}

void entropy_grad(const double* logits, std::size_t n, double* out) {
  // dH/dz_i = -p_i * (log p_i + H)... expanded: p_i*(H + log p_i) * -1.
  const auto p = softmax(logits, n);
  double h = 0.0;
  for (const double pi : p) {
    if (pi > 1e-12) h -= pi * std::log(pi);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double logp = p[i] > 1e-12 ? std::log(p[i]) : -27.6;
    out[i] = -p[i] * (logp + h);
  }
}

std::vector<std::size_t> FactoredCategorical::sample_all(const double* logits, Rng& rng) const {
  std::vector<std::size_t> out(groups);
  for (std::size_t g = 0; g < groups; ++g) out[g] = sample(logits + g * arity, arity, rng);
  return out;
}

std::vector<std::size_t> FactoredCategorical::argmax_all(const double* logits) const {
  std::vector<std::size_t> out(groups);
  for (std::size_t g = 0; g < groups; ++g) out[g] = argmax(logits + g * arity, arity);
  return out;
}

double FactoredCategorical::log_prob_all(const double* logits,
                                         const std::vector<std::size_t>& choices) const {
  double lp = 0.0;
  for (std::size_t g = 0; g < groups; ++g) lp += log_prob(logits + g * arity, arity, choices[g]);
  return lp;
}

double FactoredCategorical::entropy_all(const double* logits) const {
  double h = 0.0;
  for (std::size_t g = 0; g < groups; ++g) h += entropy(logits + g * arity, arity);
  return h;
}

void FactoredCategorical::log_prob_grad_all(const double* logits,
                                            const std::vector<std::size_t>& choices,
                                            double* out) const {
  for (std::size_t g = 0; g < groups; ++g) {
    log_prob_grad(logits + g * arity, arity, choices[g], out + g * arity);
  }
}

}  // namespace autophase::ml
