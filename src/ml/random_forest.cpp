#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

namespace autophase::ml {

namespace {

double gini(double ones, double total) {
  if (total <= 0.0) return 0.0;
  const double p = ones / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

int DecisionTree::build(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
                        std::vector<std::size_t>& indices, int depth, const ForestConfig& config,
                        Rng& rng, std::vector<double>& importance) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  double ones = 0.0;
  for (const std::size_t i : indices) ones += y[i];
  const double total = static_cast<double>(indices.size());
  nodes_[static_cast<std::size_t>(node_id)].prob_one = total > 0 ? ones / total : 0.5;

  const double node_gini = gini(ones, total);
  if (depth >= config.max_depth || node_gini <= 1e-9 ||
      indices.size() < 2 * static_cast<std::size_t>(config.min_samples_leaf)) {
    return node_id;
  }

  const std::size_t d = x.empty() ? 0 : x[0].size();
  int features_per_split = config.features_per_split;
  if (features_per_split <= 0) {
    features_per_split = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(d))));
  }

  // Candidate features: random subset without replacement.
  std::vector<std::size_t> feats(d);
  for (std::size_t i = 0; i < d; ++i) feats[i] = i;
  rng.shuffle(feats);
  feats.resize(std::min<std::size_t>(static_cast<std::size_t>(features_per_split), d));

  double best_gain = 1e-9;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<double> values;
  for (const std::size_t f : feats) {
    values.clear();
    for (const std::size_t i : indices) values.push_back(x[i][f]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;
    // Up to 16 quantile thresholds (midpoints between adjacent uniques).
    const std::size_t candidates = std::min<std::size_t>(16, values.size() - 1);
    for (std::size_t c = 0; c < candidates; ++c) {
      const std::size_t pos = (c + 1) * (values.size() - 1) / (candidates + 1);
      const double threshold = 0.5 * (values[pos] + values[pos + 1]);
      double left_ones = 0;
      double left_total = 0;
      for (const std::size_t i : indices) {
        if (x[i][f] <= threshold) {
          left_total += 1.0;
          left_ones += y[i];
        }
      }
      const double right_total = total - left_total;
      const double right_ones = ones - left_ones;
      if (left_total < config.min_samples_leaf || right_total < config.min_samples_leaf) continue;
      const double child =
          (left_total * gini(left_ones, left_total) + right_total * gini(right_ones, right_total)) /
          total;
      const double gain = node_gini - child;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }
  }
  if (best_feature < 0) return node_id;

  importance[static_cast<std::size_t>(best_feature)] += best_gain * total;

  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  for (const std::size_t i : indices) {
    (x[i][static_cast<std::size_t>(best_feature)] <= best_threshold ? left : right).push_back(i);
  }
  indices.clear();
  indices.shrink_to_fit();

  const int l = build(x, y, left, depth + 1, config, rng, importance);
  const int r = build(x, y, right, depth + 1, config, rng, importance);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = l;
  node.right = r;
  return node_id;
}

void DecisionTree::fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
                       const std::vector<std::size_t>& sample_indices, const ForestConfig& config,
                       Rng& rng, std::vector<double>& importance) {
  nodes_.clear();
  std::vector<std::size_t> indices = sample_indices;
  build(x, y, indices, 0, config, rng, importance);
}

double DecisionTree::predict(const std::vector<double>& row) const {
  if (nodes_.empty()) return 0.5;
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    cur = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].prob_one;
}

void RandomForest::fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y) {
  trees_.clear();
  const std::size_t n = x.size();
  const std::size_t d = n > 0 ? x[0].size() : 0;
  importances_.assign(d, 0.0);
  if (n == 0) return;

  Rng rng(config_.seed);
  trees_.resize(static_cast<std::size_t>(config_.num_trees));
  std::vector<std::size_t> bootstrap(n);
  for (auto& tree : trees_) {
    for (std::size_t i = 0; i < n; ++i) {
      bootstrap[i] = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    tree.fit(x, y, bootstrap, config_, rng, importances_);
  }
  double sum = 0.0;
  for (const double v : importances_) sum += v;
  if (sum > 0.0) {
    for (double& v : importances_) v /= sum;
  }
}

double RandomForest::predict(const std::vector<double>& row) const {
  if (trees_.empty()) return 0.5;
  double acc = 0.0;
  for (const auto& t : trees_) acc += t.predict(row);
  return acc / static_cast<double>(trees_.size());
}

double RandomForest::accuracy(const std::vector<std::vector<double>>& x,
                              const std::vector<int>& y) const {
  if (x.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    correct += (predict(x[i]) >= 0.5 ? 1 : 0) == y[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

DecisionTree DecisionTree::from_nodes(std::vector<Node> nodes) {
  DecisionTree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

RandomForest RandomForest::from_parts(ForestConfig config, std::vector<DecisionTree> trees,
                                      std::vector<double> importances) {
  RandomForest forest(config);
  forest.trees_ = std::move(trees);
  forest.importances_ = std::move(importances);
  return forest;
}

}  // namespace autophase::ml
