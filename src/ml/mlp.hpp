// Fully-connected network with tanh/ReLU hidden layers — the 256x256 policy
// and value approximators from the paper (§6.2 "a network with 256x256
// fully connected layers"). Supports batched forward, exact backprop given
// dLoss/dOutput, and flat parameter access for the Evolution Strategies
// trainer (which perturbs weights directly).
#pragma once

#include <vector>

#include "ml/matrix.hpp"

namespace autophase::ml {

enum class Activation { kTanh, kRelu };

struct MlpConfig {
  std::size_t input = 1;
  std::vector<std::size_t> hidden = {256, 256};
  std::size_t output = 1;
  Activation activation = Activation::kTanh;
  double init_stddev_scale = 1.0;
};

/// Per-layer parameter gradients (same shapes as the weights).
struct Gradients {
  std::vector<Matrix> weights;
  std::vector<Matrix> biases;

  void zero();
  void add(const Gradients& other);
  void scale(double s);
  /// Global L2 norm across all parameters (for gradient clipping).
  [[nodiscard]] double l2_norm() const;
};

/// Forward-pass activations retained for backprop.
struct ForwardCache {
  Matrix input;
  std::vector<Matrix> pre_activations;   // per layer
  std::vector<Matrix> post_activations;  // per layer (last = raw output)
};

class Mlp {
 public:
  explicit Mlp(const MlpConfig& config, Rng& rng);

  /// Zero-initialised network of the given shape — the deserialization
  /// target (weights are assign()ed afterwards; no RNG involved).
  explicit Mlp(const MlpConfig& config);

  [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }

  /// Batched forward: x is (batch x input). Returns (batch x output). When
  /// cache is non-null the activations are stored for backward().
  Matrix forward(const Matrix& x, ForwardCache* cache = nullptr) const;

  /// Stacks `rows` (each config().input wide) into one matrix and runs a
  /// single forward pass. Row i of the result is bit-identical to forward()
  /// on rows[i] alone — each output row is an independent dot-product chain
  /// — which is what lets the serving scheduler fold concurrent requests
  /// into one matmul without changing any request's answer.
  Matrix forward_batch(const std::vector<std::vector<double>>& rows) const;

  /// Flat-buffer variant: `rows` holds `batch` rows of config().input
  /// doubles, contiguous row-major. Adopting the buffer skips the per-row
  /// copies of the vector<vector> overload; output rows are identical.
  Matrix forward_batch(std::vector<double> rows, std::size_t batch) const;

  /// Accumulates parameter gradients for dLoss/dOutput into `grads` (which
  /// must be zero-initialised via make_gradients or Gradients::zero).
  void backward(const ForwardCache& cache, const Matrix& grad_output, Gradients& grads) const;

  [[nodiscard]] Gradients make_gradients() const;

  /// SGD-style parameter update: params += delta * scale (used by the
  /// optimisers and by ES weight perturbation).
  void apply_delta(const Gradients& delta, double scale);

  // ---- Flat parameter vector (ES / checkpointing) ----
  [[nodiscard]] std::size_t parameter_count() const noexcept;
  [[nodiscard]] std::vector<double> flatten() const;
  void assign(const std::vector<double>& flat);

  [[nodiscard]] const std::vector<Matrix>& weights() const noexcept { return weights_; }
  [[nodiscard]] const std::vector<Matrix>& biases() const noexcept { return biases_; }

 private:
  MlpConfig config_;
  std::vector<Matrix> weights_;  // layer l: (in_l x out_l)
  std::vector<Matrix> biases_;   // (1 x out_l)
};

}  // namespace autophase::ml
