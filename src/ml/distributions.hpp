// Categorical policy heads: softmax over logits for the single-action
// formulations (RL-PPO1/2, RL-A3C, RL-ES) and a factored categorical of 45
// independent 3-way choices for RL-PPO3's multi-action space (§5.2).
#pragma once

#include <vector>

#include "support/rng.hpp"

namespace autophase::ml {

/// Numerically-stable softmax of a logit row.
std::vector<double> softmax(const double* logits, std::size_t n);

/// log(softmax(logits)[index]).
double log_prob(const double* logits, std::size_t n, std::size_t index);

/// Softmax entropy.
double entropy(const double* logits, std::size_t n);

/// Samples an index from softmax(logits).
std::size_t sample(const double* logits, std::size_t n, Rng& rng);

/// argmax (greedy / inference action).
std::size_t argmax(const double* logits, std::size_t n);

/// dLogProb/dLogits for the chosen index: onehot(index) - softmax(logits).
/// Written into `out` (size n).
void log_prob_grad(const double* logits, std::size_t n, std::size_t index, double* out);

/// dEntropy/dLogits written into `out`.
void entropy_grad(const double* logits, std::size_t n, double* out);

/// A product of `groups` independent categoricals with `arity` choices each,
/// laid out as consecutive logit blocks. Log-probs/entropies sum over
/// groups; sampling/grad operate per block.
struct FactoredCategorical {
  std::size_t groups;
  std::size_t arity;

  [[nodiscard]] std::size_t logit_count() const noexcept { return groups * arity; }

  std::vector<std::size_t> sample_all(const double* logits, Rng& rng) const;
  std::vector<std::size_t> argmax_all(const double* logits) const;
  double log_prob_all(const double* logits, const std::vector<std::size_t>& choices) const;
  double entropy_all(const double* logits) const;
  void log_prob_grad_all(const double* logits, const std::vector<std::size_t>& choices,
                         double* out) const;
};

}  // namespace autophase::ml
