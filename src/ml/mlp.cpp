#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>

namespace autophase::ml {

void Gradients::zero() {
  for (auto& w : weights) w.fill(0.0);
  for (auto& b : biases) b.fill(0.0);
}

void Gradients::add(const Gradients& other) {
  for (std::size_t l = 0; l < weights.size(); ++l) {
    weights[l] += other.weights[l];
    biases[l] += other.biases[l];
  }
}

void Gradients::scale(double s) {
  for (auto& w : weights) w *= s;
  for (auto& b : biases) b *= s;
}

double Gradients::l2_norm() const {
  double sq = 0.0;
  for (const auto& w : weights) {
    for (const double v : w.data()) sq += v * v;
  }
  for (const auto& b : biases) {
    for (const double v : b.data()) sq += v * v;
  }
  return std::sqrt(sq);
}

Mlp::Mlp(const MlpConfig& config, Rng& rng) : config_(config) {
  std::vector<std::size_t> dims;
  dims.push_back(config.input);
  for (const std::size_t h : config.hidden) dims.push_back(h);
  dims.push_back(config.output);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    const double stddev =
        config.init_stddev_scale / std::sqrt(static_cast<double>(dims[l]));
    weights_.push_back(Matrix::randn(rng, dims[l], dims[l + 1], stddev));
    biases_.push_back(Matrix::zeros(1, dims[l + 1]));
  }
}

Mlp::Mlp(const MlpConfig& config) : config_(config) {
  std::vector<std::size_t> dims;
  dims.push_back(config.input);
  for (const std::size_t h : config.hidden) dims.push_back(h);
  dims.push_back(config.output);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    weights_.push_back(Matrix::zeros(dims[l], dims[l + 1]));
    biases_.push_back(Matrix::zeros(1, dims[l + 1]));
  }
}

Matrix Mlp::forward_batch(const std::vector<std::vector<double>>& rows) const {
  Matrix x(rows.size(), config_.input);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == config_.input);
    std::copy(rows[r].begin(), rows[r].end(), x.row(r));
  }
  return forward(x);
}

Matrix Mlp::forward_batch(std::vector<double> rows, std::size_t batch) const {
  assert(rows.size() == batch * config_.input);
  return forward(Matrix(batch, config_.input, std::move(rows)));
}

namespace {

void apply_activation(Matrix& m, Activation act) {
  for (double& v : m.data()) {
    v = act == Activation::kTanh ? std::tanh(v) : (v > 0.0 ? v : 0.0);
  }
}

/// grad *= act'(pre) evaluated from the post-activation value.
void activation_backward(Matrix& grad, const Matrix& post, Activation act) {
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    const double y = post.data()[i];
    grad.data()[i] *= act == Activation::kTanh ? (1.0 - y * y) : (y > 0.0 ? 1.0 : 0.0);
  }
}

void add_bias(Matrix& m, const Matrix& bias) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.row(r);
    const double* b = bias.row(0);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

}  // namespace

Matrix Mlp::forward(const Matrix& x, ForwardCache* cache) const {
  if (cache != nullptr) {
    cache->input = x;
    cache->pre_activations.clear();
    cache->post_activations.clear();
  }
  Matrix h = x;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix z = matmul(h, weights_[l]);
    add_bias(z, biases_[l]);
    const bool is_last = l + 1 == weights_.size();
    Matrix a = z;
    if (!is_last) apply_activation(a, config_.activation);
    if (cache != nullptr) {
      cache->pre_activations.push_back(std::move(z));
      cache->post_activations.push_back(a);
    }
    h = std::move(a);
  }
  return h;
}

void Mlp::backward(const ForwardCache& cache, const Matrix& grad_output,
                   Gradients& grads) const {
  const std::size_t layers = weights_.size();
  Matrix grad = grad_output;  // dLoss/d(post-activation of last layer) == output
  for (std::size_t l = layers; l-- > 0;) {
    // The last layer is linear; hidden layers apply the activation.
    if (l + 1 != layers) activation_backward(grad, cache.post_activations[l], config_.activation);
    const Matrix& layer_input = l == 0 ? cache.input : cache.post_activations[l - 1];
    grads.weights[l] += matmul_tn(layer_input, grad);
    // Bias gradient: column sums.
    for (std::size_t r = 0; r < grad.rows(); ++r) {
      const double* row = grad.row(r);
      double* b = grads.biases[l].row(0);
      for (std::size_t c = 0; c < grad.cols(); ++c) b[c] += row[c];
    }
    if (l > 0) grad = matmul_nt(grad, weights_[l]);
  }
}

Gradients Mlp::make_gradients() const {
  Gradients g;
  for (const auto& w : weights_) g.weights.emplace_back(w.rows(), w.cols());
  for (const auto& b : biases_) g.biases.emplace_back(b.rows(), b.cols());
  return g;
}

void Mlp::apply_delta(const Gradients& delta, double scale) {
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    weights_[l].add_scaled(delta.weights[l], scale);
    biases_[l].add_scaled(delta.biases[l], scale);
  }
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t n = 0;
  for (const auto& w : weights_) n += w.size();
  for (const auto& b : biases_) n += b.size();
  return n;
}

std::vector<double> Mlp::flatten() const {
  std::vector<double> out;
  out.reserve(parameter_count());
  for (const auto& w : weights_) out.insert(out.end(), w.data().begin(), w.data().end());
  for (const auto& b : biases_) out.insert(out.end(), b.data().begin(), b.data().end());
  return out;
}

void Mlp::assign(const std::vector<double>& flat) {
  std::size_t cursor = 0;
  for (auto& w : weights_) {
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(cursor),
              flat.begin() + static_cast<std::ptrdiff_t>(cursor + w.size()), w.data().begin());
    cursor += w.size();
  }
  for (auto& b : biases_) {
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(cursor),
              flat.begin() + static_cast<std::ptrdiff_t>(cursor + b.size()), b.data().begin());
    cursor += b.size();
  }
}

}  // namespace autophase::ml
