// Random forest (Breiman 2001) for the paper's §4 importance analysis: for
// each pass, a binary classifier predicts whether applying it improves the
// circuit, and the mean-decrease-in-Gini feature importances fill one row of
// the Fig. 5 / Fig. 6 heat maps.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/rng.hpp"

namespace autophase::ml {

struct ForestConfig {
  int num_trees = 40;
  int max_depth = 10;
  int min_samples_leaf = 4;
  /// Features considered per split; <=0 means sqrt(num_features).
  int features_per_split = 0;
  std::uint64_t seed = 1;
};

class DecisionTree {
 public:
  struct Node {
    int feature = -1;  // -1 = leaf
    double threshold = 0.0;
    double prob_one = 0.5;  // leaf payload
    int left = -1;
    int right = -1;
  };

  /// Fits on rows X (n x d) with binary labels y; `rng` drives feature
  /// subsampling. `importance` (size d) accumulates Gini decreases.
  void fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
           const std::vector<std::size_t>& sample_indices, const ForestConfig& config, Rng& rng,
           std::vector<double>& importance);

  /// P(label == 1).
  [[nodiscard]] double predict(const std::vector<double>& row) const;

  // ---- Serialization access (serve::write_forest / read_forest) ----
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  /// Rebuilds a fitted tree from serialized nodes.
  static DecisionTree from_nodes(std::vector<Node> nodes);

 private:
  int build(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
            std::vector<std::size_t>& indices, int depth, const ForestConfig& config, Rng& rng,
            std::vector<double>& importance);

  std::vector<Node> nodes_;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  /// Fits `num_trees` trees on bootstrap samples.
  void fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y);

  /// Mean P(label == 1) across trees.
  [[nodiscard]] double predict(const std::vector<double>& row) const;

  /// Accuracy on a labelled set.
  [[nodiscard]] double accuracy(const std::vector<std::vector<double>>& x,
                                const std::vector<int>& y) const;

  /// Normalised mean-decrease-in-impurity importances (sums to 1 when any
  /// split happened; all-zero otherwise). This is what colours one heat-map
  /// row in Figs. 5/6.
  [[nodiscard]] const std::vector<double>& feature_importances() const noexcept {
    return importances_;
  }

  // ---- Serialization access (serve::write_forest / read_forest) ----
  [[nodiscard]] const ForestConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<DecisionTree>& trees() const noexcept { return trees_; }
  /// Rebuilds a fitted forest from serialized parts.
  static RandomForest from_parts(ForestConfig config, std::vector<DecisionTree> trees,
                                 std::vector<double> importances);

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  std::vector<double> importances_;
};

}  // namespace autophase::ml
