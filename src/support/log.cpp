#include "support/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>

#include "support/str.hpp"

namespace autophase {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;  // stderr interleaving + the capture ring

std::deque<LogRecord> g_ring;  // bounded at kLogRingCapacity

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

/// Monotonic nanos since the first log call (one private epoch is enough:
/// records only ever compare against each other).
std::uint64_t monotonic_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch).count());
}

std::string format_record(const LogRecord& record) {
  return strf("t=%10.3fms [%s] [%s] %s", static_cast<double>(record.ns) / 1e6,
              level_tag(record.level), record.component.c_str(), record.message.c_str());
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

std::vector<LogRecord> recent_logs(std::size_t max) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const std::size_t n = max == 0 ? g_ring.size() : std::min(max, g_ring.size());
  return {g_ring.end() - static_cast<std::ptrdiff_t>(n), g_ring.end()};
}

std::string format_recent_logs(std::size_t max) {
  std::string out;
  for (const LogRecord& record : recent_logs(max)) {
    out += format_record(record);
    out += '\n';
  }
  return out;
}

void clear_recent_logs() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_ring.clear();
}

namespace detail {
void log_line(LogLevel level, const char* component, const std::string& message) {
  LogRecord record{level, component, monotonic_ns(), message};
  const bool to_stderr = static_cast<int>(level) >= g_level.load();
  const std::lock_guard<std::mutex> lock(g_mutex);
  // Ring capture ignores the stderr level: a quiet test run still retains
  // the evidence for a failure dump.
  g_ring.push_back(record);
  if (g_ring.size() > kLogRingCapacity) g_ring.pop_front();
  if (to_stderr) std::fprintf(stderr, "%s\n", format_record(record).c_str());
}
}  // namespace detail

}  // namespace autophase
