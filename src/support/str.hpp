// Small string utilities shared across modules (no std::format in GCC 12's
// libstdc++, so printf-style helpers live here).
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace autophase {

/// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> split(std::string_view text, char sep);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Left-pad/right-pad to a fixed width (for ASCII tables).
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

/// Render a double with fixed precision, e.g. fmt_double(0.2789, 2) == "0.28".
std::string fmt_double(double value, int precision);

}  // namespace autophase
