// Lightweight error handling: Status for operations that can fail without a
// value, Result<T> for operations producing a value. The framework reserves
// exceptions for programmer errors (assert-like invariant violations); all
// expected failures (unparseable program, HLS resource infeasibility,
// interpreter budget exhaustion) travel through Status/Result.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace autophase {

class Status {
 public:
  /// Success.
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(std::string message) { return Status(std::move(message)); }

  [[nodiscard]] bool is_ok() const noexcept { return !message_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// Error message; empty string when ok.
  [[nodiscard]] const std::string& message() const noexcept {
    static const std::string empty;
    return message_ ? *message_ : empty;
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result constructed from ok Status without value");
  }

  [[nodiscard]] bool is_ok() const noexcept { return status_.is_ok(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }
  [[nodiscard]] const std::string& message() const noexcept { return status_.message(); }

  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const& { return is_ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace autophase
