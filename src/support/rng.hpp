// Deterministic pseudo-random number generation for the whole framework.
//
// All stochastic components (program generator, RL agents, search baselines,
// random forests) take an explicit Rng so experiments are reproducible from a
// single seed. The generator is xoshiro256** seeded via SplitMix64, which is
// fast, high quality, and trivially splittable for worker threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace autophase {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Derive an independent stream (for worker threads / sub-components).
  Rng split() noexcept { return Rng(next()); }

  std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface so <algorithm> shuffles work too.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  double uniform() noexcept;

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> xs) noexcept {
    return xs[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& xs) noexcept {
    return pick(std::span<const T>(xs));
  }

  /// Sample an index from unnormalised non-negative weights.
  /// Returns weights.size()-1 on degenerate input (all zero).
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& xs) noexcept {
    for (std::size_t i = xs.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(xs[i - 1], xs[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace autophase
