#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace autophase {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Debiased modulo (Lemire-style rejection would be overkill here).
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

}  // namespace autophase
