// FNV-1a 64-bit hashing, used to fingerprint printed IR modules for the
// evaluation cache and to derive per-program RNG seeds.
#pragma once

#include <cstdint>
#include <string_view>

namespace autophase {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a(std::string_view data, std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  // boost-style combiner on 64-bit words.
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace autophase
