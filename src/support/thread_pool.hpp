// Fixed-size thread pool. Used by the A3C trainer (asynchronous workers) and
// by search baselines that evaluate candidate sequences in parallel.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace autophase {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Waits for every iteration even on failure, then rethrows the first
  /// exception a worker raised. Must not be called from a pool worker
  /// (the nested wait can deadlock once all workers are blocked in it).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace autophase
