// Fixed-size thread pool. Used by the A3C trainer (asynchronous workers) and
// by search baselines that evaluate candidate sequences in parallel.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace autophase {

class ThreadPool {
 public:
  /// What happens to still-queued tasks when the pool stops: kDrain runs
  /// every one of them before the workers exit; kCancel discards them (their
  /// futures observe std::future_error{broken_promise}).
  enum class ShutdownMode { kDrain, kCancel };

  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stops the pool and joins the workers. Idempotent and safe to call from
  /// multiple threads; the first caller's mode wins. Cancelled tasks break
  /// their promises *before* the join, so a caller blocked on a queued
  /// future is released even while a running task is still finishing — this
  /// is what lets an owner (e.g. serve::CompileService) destroy a pool with
  /// work still queued without dangling references into freed state.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Enqueue a task; the returned future resolves when it has run. After
  /// shutdown() the task is never enqueued and the future reports
  /// broken_promise instead.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Waits for every iteration even on failure, then rethrows the first
  /// exception a worker raised. Must not be called from a pool worker
  /// (the nested wait can deadlock once all workers are blocked in it).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::mutex join_mutex_;  // serialises concurrent shutdown() callers
  bool stopping_ = false;
  bool cancel_ = false;
};

}  // namespace autophase
