// Chunked bump allocator for IR nodes (LLVM BumpPtrAllocator-style). A
// rollout clone churns through thousands of instructions whose lifetimes all
// end together with the module, so per-node heap traffic — and the
// allocator-lock contention it causes across eval threads — is pure waste.
// An Arena hands out pointers from large chunks and releases everything
// wholesale in its destructor; instrumented counters back the
// allocation-count regression tests.
//
// Integration is by *ambient scope*, not by threading an allocator through
// every factory: IR node classes (Value, BasicBlock, Function) define
// class-level operator new/delete that consult the thread-local current
// arena. Each allocation is tagged so operator delete knows whether the
// memory is heap-backed (free it) or arena-backed (no-op; the chunk dies
// with the arena). All existing unique_ptr ownership code works unchanged,
// and heap- and arena-backed nodes can be mixed freely in one module.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace autophase::support {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` (rounded up to max_align_t alignment). Not
  /// thread-safe: an arena belongs to one module, and modules are
  /// thread-confined on the rollout path.
  void* allocate(std::size_t bytes) {
    constexpr std::size_t kAlign = alignof(std::max_align_t);
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (bytes > remaining_) grow(bytes);
    std::byte* out = cursor_;
    cursor_ += bytes;
    remaining_ -= bytes;
    ++allocations_;
    bytes_allocated_ += bytes;
    return out;
  }

  // ---- Instrumentation (regression-tested: a CoW rollout clone of an
  // unmutated module must allocate O(functions), not O(instructions)) ----
  [[nodiscard]] std::size_t allocation_count() const noexcept { return allocations_; }
  [[nodiscard]] std::size_t bytes_allocated() const noexcept { return bytes_allocated_; }
  [[nodiscard]] std::size_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  void grow(std::size_t min_bytes);

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t chunk_bytes_;
  std::size_t allocations_ = 0;
  std::size_t bytes_allocated_ = 0;
};

/// The ambient arena new IR nodes allocate from (null = plain heap).
[[nodiscard]] Arena* current_arena() noexcept;

/// RAII switch of the thread-local current arena. Nests: the previous arena
/// is restored on destruction, so cloning a module while materialising
/// another stays correct.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena) noexcept;
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* previous_;
};

/// Backing for class-level operator new on IR nodes: allocates from the
/// current arena when one is active (else the heap), prefixing a one-word
/// tag so arena_aware_deallocate can tell the two apart.
[[nodiscard]] void* arena_aware_allocate(std::size_t size);

/// Backing for class-level operator delete: frees heap-tagged memory,
/// no-ops for arena-tagged memory (released wholesale with the arena).
void arena_aware_deallocate(void* ptr) noexcept;

}  // namespace autophase::support
