// Minimal leveled logging to stderr. Benches and long-running training
// drivers use this for progress lines; tests silence it by raising the level.
#pragma once

#include <sstream>
#include <string>

namespace autophase {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

/// Stream-style logger: LogMessage(LogLevel::kInfo) << "x=" << x;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { detail::log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace autophase

#define AP_LOG_DEBUG ::autophase::LogMessage(::autophase::LogLevel::kDebug)
#define AP_LOG_INFO ::autophase::LogMessage(::autophase::LogLevel::kInfo)
#define AP_LOG_WARN ::autophase::LogMessage(::autophase::LogLevel::kWarn)
#define AP_LOG_ERROR ::autophase::LogMessage(::autophase::LogLevel::kError)
