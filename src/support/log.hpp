// Structured leveled logging. Every message carries a level, a component
// tag, and a monotonic timestamp; besides the stderr line, the last N
// records are kept in a bounded ring retrievable via recent_logs() (exposed
// as obs::recent_logs()) — the chaos suite dumps them on test failure, and a
// wedged node can be asked what it was doing without grepping stderr.
// Benches and long-running training drivers use this for progress lines;
// tests silence stderr by raising the level (ring capture is unaffected).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace autophase {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped from stderr. Ring
/// capture keeps everything at or above kDebug regardless, so post-mortem
/// retrieval works even in quiet test runs.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// One captured log line.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;  // e.g. "serve", "gossip", "sim"
  std::uint64_t ns = 0;   // monotonic nanos (obs::trace_now_ns clock)
  std::string message;
};

/// The most recent `max` records (all retained records when max == 0),
/// oldest first. The ring holds the last kLogRingCapacity records.
inline constexpr std::size_t kLogRingCapacity = 512;
std::vector<LogRecord> recent_logs(std::size_t max = 0);
/// Human-readable dump of recent_logs() ("t=12.345ms [WARN ] [gossip] ...").
std::string format_recent_logs(std::size_t max = 0);
/// Drops all retained records (test isolation).
void clear_recent_logs();

namespace detail {
void log_line(LogLevel level, const char* component, const std::string& message);
}

/// Stream-style logger: LogMessage(LogLevel::kInfo, "serve") << "x=" << x;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level, const char* component = "app")
      : level_(level), component_(component) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { detail::log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace autophase

#define AP_LOG_DEBUG ::autophase::LogMessage(::autophase::LogLevel::kDebug)
#define AP_LOG_INFO ::autophase::LogMessage(::autophase::LogLevel::kInfo)
#define AP_LOG_WARN ::autophase::LogMessage(::autophase::LogLevel::kWarn)
#define AP_LOG_ERROR ::autophase::LogMessage(::autophase::LogLevel::kError)

/// Component-tagged variants: AP_CLOG(kWarn, "gossip") << "peer down";
#define AP_CLOG(level, component) \
  ::autophase::LogMessage(::autophase::LogLevel::level, component)
