#include "support/thread_pool.hpp"

#include <algorithm>

namespace autophase {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(ShutdownMode::kDrain); }

void ThreadPool::shutdown(ShutdownMode mode) {
  {
    std::queue<std::packaged_task<void()>> discarded;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_) {
        stopping_ = true;
        cancel_ = mode == ShutdownMode::kCancel;
      }
      if (cancel_) discarded.swap(tasks_);
    }
    // `discarded` dies here — outside the queue lock and *before* the join:
    // every unrun task breaks its promise immediately, so callers blocked on
    // those futures are released even while a running task still finishes.
  }
  cv_.notify_all();
  const std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // After shutdown the task is dropped on the floor (broken promise)
    // rather than enqueued onto a queue no worker will ever drain.
    if (!stopping_) {
      tasks_.push(std::move(packaged));
    }
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  // Exceptions are captured per task and the first one is rethrown only after
  // every iteration has finished: returning (or throwing) while tasks are
  // still running would leave workers touching `fn` after it went out of
  // scope in the caller.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i, &error_mutex, &first_error] {
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }));
  }
  for (auto& f : futures) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && (cancel_ || tasks_.empty())) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace autophase
