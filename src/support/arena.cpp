#include "support/arena.hpp"

#include <algorithm>

namespace autophase::support {

namespace {

// Tag header size: one max_align_t slot keeps the user pointer aligned.
constexpr std::size_t kHeaderBytes = alignof(std::max_align_t);
constexpr std::uint64_t kHeapTag = 0x4845'4150'5441'4721ull;
constexpr std::uint64_t kArenaTag = 0x4152'454e'4154'4147ull;

thread_local Arena* tls_arena = nullptr;

}  // namespace

void Arena::grow(std::size_t min_bytes) {
  const std::size_t size = std::max(chunk_bytes_, min_bytes);
  chunks_.push_back(std::make_unique<std::byte[]>(size));
  cursor_ = chunks_.back().get();
  remaining_ = size;
}

Arena* current_arena() noexcept { return tls_arena; }

ArenaScope::ArenaScope(Arena* arena) noexcept : previous_(tls_arena) { tls_arena = arena; }

ArenaScope::~ArenaScope() { tls_arena = previous_; }

void* arena_aware_allocate(std::size_t size) {
  Arena* arena = tls_arena;
  std::byte* base = arena != nullptr
                        ? static_cast<std::byte*>(arena->allocate(size + kHeaderBytes))
                        : static_cast<std::byte*>(::operator new(size + kHeaderBytes));
  *reinterpret_cast<std::uint64_t*>(base) = arena != nullptr ? kArenaTag : kHeapTag;
  return base + kHeaderBytes;
}

void arena_aware_deallocate(void* ptr) noexcept {
  if (ptr == nullptr) return;
  std::byte* base = static_cast<std::byte*>(ptr) - kHeaderBytes;
  const std::uint64_t tag = *reinterpret_cast<std::uint64_t*>(base);
  if (tag == kHeapTag) {
    ::operator delete(base);
    return;
  }
  assert(tag == kArenaTag && "IR node freed with a corrupted allocation tag");
}

}  // namespace autophase::support
