// ASCII table / CSV rendering used by the benchmark harnesses so every
// table and figure of the paper is reproduced as a readable text artifact.
#pragma once

#include <string>
#include <vector>

namespace autophase {

/// Column-aligned text table. Rows may be added incrementally; rendering
/// computes column widths from content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  [[nodiscard]] std::string render() const;

  /// Comma-separated rendering (for piping into plotting scripts).
  [[nodiscard]] std::string render_csv() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a dense matrix as an ASCII heat map (used for Figs. 5 and 6).
/// Each cell is mapped onto the ramp " .:-=+*#%@" by its value relative to
/// the matrix maximum. Row/column labels are index-based.
std::string render_heatmap(const std::vector<std::vector<double>>& matrix,
                           const std::string& row_axis, const std::string& col_axis);

}  // namespace autophase
