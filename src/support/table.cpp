#include "support/table.hpp"

#include <algorithm>

#include "support/str.hpp"

namespace autophase {

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string();
      out += " " + pad_right(cell, widths[c]) + " |";
    }
    out += "\n";
  };
  std::string rule = "+";
  for (const auto w : widths) rule += std::string(w + 2, '-') + "+";
  rule += "\n";
  out += rule;
  emit_row(header_);
  out += rule;
  for (const auto& row : rows_) emit_row(row);
  out += rule;
  return out;
}

std::string TextTable::render_csv() const {
  std::string out = join(header_, ",") + "\n";
  for (const auto& row : rows_) out += join(row, ",") + "\n";
  return out;
}

std::string render_heatmap(const std::vector<std::vector<double>>& matrix,
                           const std::string& row_axis, const std::string& col_axis) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kRampMax = 9;
  double max_value = 0.0;
  for (const auto& row : matrix) {
    for (const double v : row) max_value = std::max(max_value, v);
  }
  std::string out = strf("heatmap: rows=%s cols=%s (max=%.4f, ramp=\"%s\")\n", row_axis.c_str(),
                         col_axis.c_str(), max_value, kRamp);
  if (matrix.empty()) return out;
  out += "     ";
  for (std::size_t c = 0; c < matrix[0].size(); ++c) out += (c % 10 == 0) ? '|' : ' ';
  out += "\n";
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    out += pad_left(strf("%zu", r), 3) + " [";
    for (const double v : matrix[r]) {
      const int idx = max_value > 0.0
                          ? std::min(kRampMax, static_cast<int>(v / max_value * kRampMax + 0.5))
                          : 0;
      out += kRamp[idx];
    }
    out += "]\n";
  }
  return out;
}

}  // namespace autophase
