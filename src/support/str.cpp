#include "support/str.hpp"

#include <cstdio>

namespace autophase {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\n' || text[b] == '\r')) ++b;
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' || text[e - 1] == '\n' ||
                   text[e - 1] == '\r')) {
    --e;
  }
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string fmt_double(double value, int precision) {
  return strf("%.*f", precision, value);
}

}  // namespace autophase
