#include "progen/chstone_like.hpp"

#include <cassert>

#include "progen/codegen.hpp"

namespace autophase::progen {

namespace {

using ir::Function;
using ir::ICmpPred;
using ir::Type;
using ir::Value;

/// Deterministic pseudo-random table data (tiny LCG, host-side).
std::vector<std::int64_t> table(std::size_t n, std::uint32_t seed, std::int64_t mask) {
  std::vector<std::int64_t> out(n);
  std::uint32_t x = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    out[i] = static_cast<std::int64_t>((x >> 8) & static_cast<std::uint32_t>(mask));
  }
  return out;
}

// ---------------------------------------------------------------------------
// matmul: 8x8 integer matrix multiply (triple loop nest), then checksum.
// ---------------------------------------------------------------------------
std::unique_ptr<ir::Module> build_matmul() {
  auto m = std::make_unique<ir::Module>("matmul");
  constexpr std::int64_t kN = 8;
  Function* f = m->create_function("main", Type::i32(), {});
  CodeGen g(*m, *f);
  auto& b = g.b();

  Value* a = g.array(Type::i32(), kN * kN, "A");
  Value* bb = g.array(Type::i32(), kN * kN, "B");
  Value* c = g.array(Type::i32(), kN * kN, "C");
  Value* i = g.local_i32("i");
  Value* j = g.local_i32("j");
  Value* k = g.local_i32("k");
  Value* sum = g.local_i32("sum");

  auto at = [&](Value* base, Value* row, Value* col) {
    Value* idx = b.add(b.mul(row, m->get_i32(kN)), col);
    return g.elem(base, idx);
  };

  // Init: A[i][j] = i*3 + j; B[i][j] = i - 2*j.
  g.count_loop(i, 0, kN, [&] {
    g.count_loop(j, 0, kN, [&] {
      Value* iv = g.get(i);
      Value* jv = g.get(j);
      g.set(at(a, iv, jv), b.add(b.mul(iv, m->get_i32(3)), jv));
      g.set(at(bb, iv, jv), b.sub(iv, b.mul(jv, m->get_i32(2))));
    });
  });

  // C = A * B.
  g.count_loop(i, 0, kN, [&] {
    g.count_loop(j, 0, kN, [&] {
      g.set(sum, 0);
      g.count_loop(k, 0, kN, [&] {
        Value* prod = b.mul(g.get(at(a, g.get(i), g.get(k))), g.get(at(bb, g.get(k), g.get(j))));
        g.set(sum, b.add(g.get(sum), prod));
      });
      g.set(at(c, g.get(i), g.get(j)), g.get(sum));
    });
  });

  // Checksum.
  Value* acc = g.local_i32("acc");
  g.set(acc, 0);
  g.count_loop(i, 0, kN * kN, [&] {
    g.set(acc, b.xor_(b.add(g.get(acc), g.get(acc)), g.get(g.elem(c, g.get(i)))));
  });
  g.ret(g.get(acc));
  return m;
}

// ---------------------------------------------------------------------------
// aes: sbox substitution + round-key xor + byte rotation over a 16B state.
// ---------------------------------------------------------------------------
std::unique_ptr<ir::Module> build_aes() {
  auto m = std::make_unique<ir::Module>("aes");
  ir::GlobalVariable* sbox =
      m->create_global(Type::i32(), 256, "sbox", table(256, 0xae5, 0xff), true);
  ir::GlobalVariable* rkey =
      m->create_global(Type::i32(), 16, "rkey", table(16, 0x4e7, 0xff), true);

  Function* f = m->create_function("main", Type::i32(), {});
  CodeGen g(*m, *f);
  auto& b = g.b();

  Value* state = g.array(Type::i32(), 16, "state");
  Value* i = g.local_i32("i");
  Value* r = g.local_i32("r");

  g.count_loop(i, 0, 16, [&] {
    g.set(g.elem(state, g.get(i)), b.and_(b.mul(g.get(i), m->get_i32(17)), m->get_i32(255)));
  });

  g.count_loop(r, 0, 10, [&] {
    // SubBytes + AddRoundKey.
    g.count_loop(i, 0, 16, [&] {
      Value* s = g.get(g.elem(state, g.get(i)));
      Value* sub = g.get(g.elem_masked(sbox, s, 256));
      Value* key = g.get(g.elem_masked(rkey, b.add(g.get(r), g.get(i)), 16));
      g.set(g.elem(state, g.get(i)), b.and_(b.xor_(sub, key), m->get_i32(255)));
    });
    // ShiftRows-ish rotation: state[i] ^= state[(i+4) & 15] << 1 (mod 256).
    g.count_loop(i, 0, 16, [&] {
      Value* other = g.get(g.elem_masked(state, b.add(g.get(i), m->get_i32(4)), 16));
      Value* rot = b.and_(b.shl(other, m->get_i32(1)), m->get_i32(255));
      Value* cur = g.get(g.elem(state, g.get(i)));
      g.set(g.elem(state, g.get(i)), b.xor_(cur, rot));
    });
  });

  Value* acc = g.local_i32("acc");
  g.set(acc, 0);
  g.count_loop(i, 0, 16, [&] {
    g.set(acc, b.add(b.mul(g.get(acc), m->get_i32(257)), g.get(g.elem(state, g.get(i)))));
  });
  g.ret(g.get(acc));
  return m;
}

// ---------------------------------------------------------------------------
// blowfish: feistel rounds with P-array and S-box lookups over data blocks.
// ---------------------------------------------------------------------------
std::unique_ptr<ir::Module> build_blowfish() {
  auto m = std::make_unique<ir::Module>("blowfish");
  ir::GlobalVariable* parr =
      m->create_global(Type::i32(), 18, "P", table(18, 0xb1f, 0xffff), true);
  ir::GlobalVariable* sbox =
      m->create_global(Type::i32(), 256, "S", table(256, 0x5b0, 0xffff), true);

  // feistel F function: combines S-box lookups of the word's bytes.
  Function* ff = m->create_function("feistel", Type::i32(), {Type::i32()}, {"x"});
  {
    CodeGen g(*m, *ff);
    auto& b = g.b();
    Value* x = g.local_i32("xl");
    g.set(x, ff->arg(0));
    Value* hi = g.get(g.elem_masked(sbox, b.lshr(g.get(x), m->get_i32(8)), 256));
    Value* lo = g.get(g.elem_masked(sbox, g.get(x), 256));
    Value* mixed = b.xor_(b.add(hi, lo), b.lshr(g.get(x), m->get_i32(4)));
    g.ret(b.and_(mixed, m->get_i32(0xffff)));
  }

  Function* f = m->create_function("main", Type::i32(), {});
  CodeGen g(*m, *f);
  auto& b = g.b();
  Value* data = g.array(Type::i32(), 16, "data");
  Value* i = g.local_i32("i");
  Value* r = g.local_i32("r");
  Value* left = g.local_i32("L");
  Value* right = g.local_i32("R");

  g.count_loop(i, 0, 16, [&] {
    g.set(g.elem(data, g.get(i)), b.mul(g.get(i), m->get_i32(2654435)));
  });

  // Encrypt 8 two-word blocks.
  g.count_loop(i, 0, 8, [&] {
    Value* base = b.mul(g.get(i), m->get_i32(2));
    g.set(left, g.get(g.elem(data, base)));
    g.set(right, g.get(g.elem(data, b.add(base, m->get_i32(1)))));
    g.count_loop(r, 0, 16, [&] {
      Value* p = g.get(g.elem_masked(parr, g.get(r), 32));  // 18 entries; mask keeps in 32
      Value* l1 = b.xor_(g.get(left), p);
      Value* fr = b.call(ff, {l1});
      Value* r1 = b.xor_(g.get(right), fr);
      g.set(left, r1);  // swap
      g.set(right, l1);
    });
    g.set(g.elem(data, base), g.get(left));
    g.set(g.elem(data, b.add(base, m->get_i32(1))), g.get(right));
  });

  Value* acc = g.local_i32("acc");
  g.set(acc, 0);
  g.count_loop(i, 0, 16, [&] {
    g.set(acc, b.xor_(b.add(g.get(acc), g.get(acc)), g.get(g.elem(data, g.get(i)))));
  });
  g.ret(g.get(acc));
  return m;
}

// ---------------------------------------------------------------------------
// dhrystone: records-and-branches integer mix with helper procedures and a
// switch, string-compare-style i8 loops.
// ---------------------------------------------------------------------------
std::unique_ptr<ir::Module> build_dhrystone() {
  auto m = std::make_unique<ir::Module>("dhrystone");

  // proc_cmp: lexicographic compare of two 16-char buffers.
  Function* cmp = m->create_function("str_cmp", Type::i32(),
                                     {Type::pointer_to(Type::i8()), Type::pointer_to(Type::i8())},
                                     {"s1", "s2"});
  {
    CodeGen g(*m, *cmp);
    auto& b = g.b();
    Value* i = g.local_i32("i");
    Value* res = g.local_i32("res");
    g.set(res, 0);
    g.count_loop(i, 0, 16, [&] {
      Value* idx = g.get(i);
      Value* c1 = b.sext(g.get(b.gep(cmp->arg(0), idx)), Type::i32());
      Value* c2 = b.sext(g.get(b.gep(cmp->arg(1), idx)), Type::i32());
      Value* diff = b.sub(c1, c2);
      Value* is_zero = b.icmp_eq(g.get(res), m->get_i32(0));
      Value* nonzero = b.icmp_ne(diff, m->get_i32(0));
      g.if_then(b.and_(is_zero, nonzero), [&] { g.set(res, diff); });
    });
    g.ret(g.get(res));
  }

  // proc_classify: branchy classification used in the main loop.
  Function* classify = m->create_function("classify", Type::i32(), {Type::i32()}, {"v"});
  {
    CodeGen g(*m, *classify);
    auto& b = g.b();
    Value* out = g.local_i32("out");
    g.set(out, 0);
    Value* v = classify->arg(0);
    g.if_then_else(
        b.icmp_slt(v, m->get_i32(10)),
        [&] { g.set(out, b.mul(v, m->get_i32(3))); },
        [&] {
          g.if_then_else(b.icmp_slt(v, m->get_i32(100)),
                         [&] { g.set(out, b.add(v, m->get_i32(7))); },
                         [&] { g.set(out, b.lshr(v, m->get_i32(2))); });
        });
    g.ret(g.get(out));
  }

  // tail_sum: strict tail recursion (call immediately followed by ret, no
  // allocas) — the exact shape -tailcallelim converts into a loop.
  Function* tail_sum =
      m->create_function("tail_sum", Type::i32(), {Type::i32(), Type::i32()}, {"n", "acc"});
  {
    ir::IRBuilder tb(*m);
    ir::BasicBlock* entry = tail_sum->create_block("entry");
    ir::BasicBlock* base = tail_sum->create_block("base");
    ir::BasicBlock* rec = tail_sum->create_block("rec");
    tb.set_insert_point(entry);
    Value* done = tb.icmp(ICmpPred::kSle, tail_sum->arg(0), m->get_i32(0));
    tb.cond_br(done, base, rec);
    tb.set_insert_point(base);
    tb.ret(tail_sum->arg(1));
    tb.set_insert_point(rec);
    Value* acc2 = tb.add(tail_sum->arg(1), tail_sum->arg(0));
    Value* n2 = tb.sub(tail_sum->arg(0), m->get_i32(1));
    Value* r = tb.call(tail_sum, {n2, acc2});
    tb.ret(r);
  }

  Function* f = m->create_function("main", Type::i32(), {});
  CodeGen g(*m, *f);
  auto& b = g.b();
  Value* s1 = g.array(Type::i8(), 16, "s1");
  Value* s2 = g.array(Type::i8(), 16, "s2");
  Value* i = g.local_i32("i");
  Value* run = g.local_i32("run");
  Value* int_glob = g.local_i32("int_glob");
  Value* acc = g.local_i32("acc");

  g.count_loop(i, 0, 16, [&] {
    Value* ch = b.trunc(b.add(g.get(i), m->get_i32(65)), Type::i8());
    g.set(g.elem(s1, g.get(i)), ch);
    Value* ch2 = b.trunc(b.add(b.mul(g.get(i), m->get_i32(2)), m->get_i32(65)), Type::i8());
    g.set(g.elem(s2, g.get(i)), ch2);
  });

  g.set(int_glob, 5);
  g.set(acc, 0);
  g.count_loop(run, 0, 40, [&] {
    Value* cls = b.call(classify, {b.add(g.get(run), g.get(int_glob))});
    g.set(acc, b.add(g.get(acc), cls));
    Value* sel = b.and_(g.get(run), m->get_i32(3));
    g.switch_cases(
        sel,
        {{0, [&] { g.set(int_glob, b.add(g.get(int_glob), m->get_i32(1))); }},
         {1, [&] { g.set(int_glob, b.xor_(g.get(int_glob), g.get(acc))); }},
         {2, [&] { g.set(int_glob, b.and_(g.get(int_glob), m->get_i32(0x7fff))); }}},
        [&] { g.set(int_glob, b.sub(g.get(int_glob), m->get_i32(2))); });
    g.if_then(b.icmp_sgt(g.get(acc), m->get_i32(4000)),
              [&] { g.set(acc, b.srem(g.get(acc), m->get_i32(977))); });
  });

  Value* c = b.call(cmp, {s1, s2});
  Value* ts = b.call(tail_sum, {m->get_i32(50), m->get_i32(0)});
  g.ret(b.add(b.mul(g.get(acc), m->get_i32(31)),
              b.add(b.add(c, ts), g.get(int_glob))));
  return m;
}

// ---------------------------------------------------------------------------
// gsm: saturated multiply-accumulate over 40-sample windows (LPC-style).
// ---------------------------------------------------------------------------
std::unique_ptr<ir::Module> build_gsm() {
  auto m = std::make_unique<ir::Module>("gsm");

  // Saturating add with early-exit guards (partial-inliner shape).
  Function* sat = m->create_function("sat_add", Type::i32(), {Type::i32(), Type::i32()},
                                     {"a", "b"});
  {
    CodeGen g(*m, *sat);
    auto& b = g.b();
    Value* s = g.local_i32("s");
    g.set(s, b.add(sat->arg(0), sat->arg(1)));
    g.if_then(b.icmp_sgt(g.get(s), m->get_i32(32767)), [&] { g.set(s, 32767); });
    g.if_then(b.icmp_slt(g.get(s), m->get_i32(-32768)), [&] { g.set(s, -32768); });
    g.ret(g.get(s));
  }

  Function* f = m->create_function("main", Type::i32(), {});
  CodeGen g(*m, *f);
  auto& b = g.b();
  Value* samples = g.array(Type::i32(), 64, "samples");
  Value* weights = g.array(Type::i32(), 8, "weights");
  Value* i = g.local_i32("i");
  Value* k = g.local_i32("k");
  Value* acc = g.local_i32("acc");
  Value* out = g.local_i32("out");

  g.count_loop(i, 0, 64, [&] {
    Value* x = b.sub(b.mul(g.get(i), m->get_i32(113)), m->get_i32(1700));
    g.set(g.elem(samples, g.get(i)), b.srem(x, m->get_i32(32768)));
  });
  g.count_loop(i, 0, 8, [&] {
    g.set(g.elem(weights, g.get(i)), b.sub(m->get_i32(4), g.get(i)));
  });

  g.set(out, 0);
  g.count_loop(i, 0, 40, [&] {
    g.set(acc, 0);
    g.count_loop(k, 0, 8, [&] {
      Value* s = g.get(g.elem_masked(samples, b.add(g.get(i), g.get(k)), 64));
      Value* w = g.get(g.elem(weights, g.get(k)));
      Value* prod = b.ashr(b.mul(s, w), m->get_i32(2));
      g.set(acc, b.call(sat, {g.get(acc), prod}));
    });
    g.set(out, b.call(sat, {g.get(out), b.ashr(g.get(acc), m->get_i32(3))}));
  });
  g.ret(g.get(out));
  return m;
}

// ---------------------------------------------------------------------------
// adpcm: step-size table quantiser with heavy branching and clamping.
// ---------------------------------------------------------------------------
std::unique_ptr<ir::Module> build_adpcm() {
  auto m = std::make_unique<ir::Module>("adpcm");
  ir::GlobalVariable* steps =
      m->create_global(Type::i32(), 32, "step_table", table(32, 0xadc, 0x3fff), true);

  Function* f = m->create_function("main", Type::i32(), {});
  CodeGen g(*m, *f);
  auto& b = g.b();
  Value* pcm = g.array(Type::i32(), 64, "pcm");
  Value* i = g.local_i32("i");
  Value* valpred = g.local_i32("valpred");
  Value* index = g.local_i32("index");
  Value* acc = g.local_i32("acc");

  g.count_loop(i, 0, 64, [&] {
    Value* x = b.mul(g.get(i), m->get_i32(321));
    g.set(g.elem(pcm, g.get(i)), b.sub(b.and_(x, m->get_i32(4095)), m->get_i32(2048)));
  });

  g.set(valpred, 0);
  g.set(index, 4);
  g.set(acc, 0);
  g.count_loop(i, 0, 64, [&] {
    Value* step = g.get(g.elem_masked(steps, g.get(index), 32));
    Value* diff = b.sub(g.get(g.elem(pcm, g.get(i))), g.get(valpred));
    Value* code = g.local_i32("code");
    g.set(code, 0);
    Value* adiff = g.local_i32("adiff");
    g.if_then_else(b.icmp_slt(diff, m->get_i32(0)),
                   [&] {
                     g.set(code, 8);
                     g.set(adiff, b.sub(m->get_i32(0), diff));
                   },
                   [&] { g.set(adiff, diff); });
    // 3-bit magnitude quantisation against step, step/2, step/4.
    g.if_then(b.icmp_sge(g.get(adiff), step), [&] {
      g.set(code, b.or_(g.get(code), m->get_i32(4)));
      g.set(adiff, b.sub(g.get(adiff), step));
    });
    Value* half = b.ashr(step, m->get_i32(1));
    g.if_then(b.icmp_sge(g.get(adiff), half), [&] {
      g.set(code, b.or_(g.get(code), m->get_i32(2)));
      g.set(adiff, b.sub(g.get(adiff), half));
    });
    Value* quarter = b.ashr(step, m->get_i32(2));
    g.if_then(b.icmp_sge(g.get(adiff), quarter),
              [&] { g.set(code, b.or_(g.get(code), m->get_i32(1))); });

    // Reconstruct and clamp the predictor.
    Value* delta = b.mul(b.and_(g.get(code), m->get_i32(7)), b.ashr(step, m->get_i32(2)));
    g.if_then_else(
        b.icmp_ne(b.and_(g.get(code), m->get_i32(8)), m->get_i32(0)),
        [&] { g.set(valpred, b.sub(g.get(valpred), delta)); },
        [&] { g.set(valpred, b.add(g.get(valpred), delta)); });
    g.if_then(b.icmp_sgt(g.get(valpred), m->get_i32(32767)), [&] { g.set(valpred, 32767); });
    g.if_then(b.icmp_slt(g.get(valpred), m->get_i32(-32768)), [&] { g.set(valpred, -32768); });

    // Index update with clamping.
    g.if_then_else(b.icmp_sge(b.and_(g.get(code), m->get_i32(7)), m->get_i32(4)),
                   [&] { g.set(index, b.add(g.get(index), m->get_i32(2))); },
                   [&] { g.set(index, b.sub(g.get(index), m->get_i32(1))); });
    g.if_then(b.icmp_slt(g.get(index), m->get_i32(0)), [&] { g.set(index, 0); });
    g.if_then(b.icmp_sgt(g.get(index), m->get_i32(31)), [&] { g.set(index, 31); });

    g.set(acc, b.add(b.xor_(g.get(acc), g.get(valpred)), g.get(code)));
  });
  g.ret(g.get(acc));
  return m;
}

// ---------------------------------------------------------------------------
// mpeg2: 8x8 IDCT-style butterflies (row pass + column pass with constants).
// ---------------------------------------------------------------------------
std::unique_ptr<ir::Module> build_mpeg2() {
  auto m = std::make_unique<ir::Module>("mpeg2");
  Function* f = m->create_function("main", Type::i32(), {});
  CodeGen g(*m, *f);
  auto& b = g.b();
  Value* block = g.array(Type::i32(), 64, "block");
  Value* i = g.local_i32("i");
  Value* r = g.local_i32("r");

  g.count_loop(i, 0, 64, [&] {
    Value* x = b.sub(b.mul(g.get(i), m->get_i32(97)), m->get_i32(3000));
    g.set(g.elem(block, g.get(i)), b.srem(x, m->get_i32(256)));
  });

  auto butterfly = [&](Value* p0, Value* p1, std::int64_t w0, std::int64_t w1) {
    Value* a = g.get(p0);
    Value* c = g.get(p1);
    Value* t0 = b.ashr(b.add(b.mul(a, m->get_i32(w0)), b.mul(c, m->get_i32(w1))),
                       m->get_i32(8));
    Value* t1 = b.ashr(b.sub(b.mul(a, m->get_i32(w1)), b.mul(c, m->get_i32(w0))),
                       m->get_i32(8));
    g.set(p0, t0);
    g.set(p1, t1);
  };

  // Row pass.
  g.count_loop(r, 0, 8, [&] {
    Value* base = b.mul(g.get(r), m->get_i32(8));
    butterfly(g.elem(block, base), g.elem(block, b.add(base, m->get_i32(4))), 362, 196);
    butterfly(g.elem(block, b.add(base, m->get_i32(1))),
              g.elem(block, b.add(base, m->get_i32(5))), 473, 97);
    butterfly(g.elem(block, b.add(base, m->get_i32(2))),
              g.elem(block, b.add(base, m->get_i32(6))), 256, 256);
    butterfly(g.elem(block, b.add(base, m->get_i32(3))),
              g.elem(block, b.add(base, m->get_i32(7))), 338, 145);
  });
  // Column pass.
  g.count_loop(r, 0, 8, [&] {
    butterfly(g.elem(block, g.get(r)), g.elem(block, b.add(g.get(r), m->get_i32(32))), 362,
              196);
    butterfly(g.elem(block, b.add(g.get(r), m->get_i32(8))),
              g.elem(block, b.add(g.get(r), m->get_i32(40))), 473, 97);
    butterfly(g.elem(block, b.add(g.get(r), m->get_i32(16))),
              g.elem(block, b.add(g.get(r), m->get_i32(48))), 256, 256);
    butterfly(g.elem(block, b.add(g.get(r), m->get_i32(24))),
              g.elem(block, b.add(g.get(r), m->get_i32(56))), 338, 145);
  });
  // Clamp pass + checksum.
  Value* acc = g.local_i32("acc");
  g.set(acc, 0);
  g.count_loop(i, 0, 64, [&] {
    Value* p = g.elem(block, g.get(i));
    g.if_then(b.icmp_sgt(g.get(p), m->get_i32(255)), [&] { g.set(p, 255); });
    g.if_then(b.icmp_slt(g.get(p), m->get_i32(-256)), [&] { g.set(p, -256); });
    g.set(acc, b.add(b.mul(g.get(acc), m->get_i32(17)), g.get(p)));
  });
  g.ret(g.get(acc));
  return m;
}

// ---------------------------------------------------------------------------
// qsort: recursive quicksort over 32 elements (tail-recursive second half).
// ---------------------------------------------------------------------------
std::unique_ptr<ir::Module> build_qsort() {
  auto m = std::make_unique<ir::Module>("qsort");
  ir::GlobalVariable* data = m->create_global(Type::i32(), 32, "data", {}, false);

  Function* qs = m->create_function("quicksort", Type::void_ty(),
                                    {Type::i32(), Type::i32()}, {"lo", "hi"});
  {
    CodeGen g(*m, *qs);
    auto& b = g.b();
    Value* lo_p = g.local_i32("lo_p");
    Value* hi_p = g.local_i32("hi_p");
    g.set(lo_p, qs->arg(0));
    g.set(hi_p, qs->arg(1));

    g.if_then(b.icmp_slt(g.get(lo_p), g.get(hi_p)), [&] {
      // Lomuto partition with data[hi] as pivot.
      Value* pivot = g.local_i32("pivot");
      g.set(pivot, g.get(g.elem_masked(data, g.get(hi_p), 32)));
      Value* store_idx = g.local_i32("si");
      g.set(store_idx, g.get(lo_p));
      Value* j = g.local_i32("j");
      g.count_loop(j, g.get(lo_p), g.get(hi_p), 1, [&] {
        Value* v = g.get(g.elem_masked(data, g.get(j), 32));
        g.if_then(b.icmp_slt(v, g.get(pivot)), [&] {
          // swap data[si], data[j]
          Value* si_v = g.get(g.elem_masked(data, g.get(store_idx), 32));
          g.set(g.elem_masked(data, g.get(store_idx), 32), v);
          g.set(g.elem_masked(data, g.get(j), 32), si_v);
          g.set(store_idx, b.add(g.get(store_idx), m->get_i32(1)));
        });
      });
      Value* si_v = g.get(g.elem_masked(data, g.get(store_idx), 32));
      g.set(g.elem_masked(data, g.get(store_idx), 32),
            g.get(g.elem_masked(data, g.get(hi_p), 32)));
      g.set(g.elem_masked(data, g.get(hi_p), 32), si_v);

      // Recurse left, then tail-recurse right.
      b.call(qs, {g.get(lo_p), b.sub(g.get(store_idx), m->get_i32(1))});
      b.call(qs, {b.add(g.get(store_idx), m->get_i32(1)), g.get(hi_p)});
    });
    g.ret_void();
  }

  Function* f = m->create_function("main", Type::i32(), {});
  CodeGen g(*m, *f);
  auto& b = g.b();
  Value* i = g.local_i32("i");
  g.count_loop(i, 0, 32, [&] {
    Value* x = b.and_(b.mul(g.get(i), m->get_i32(2654435761)), m->get_i32(1023));
    g.set(g.elem_masked(data, g.get(i), 32), x);
  });
  b.call(f->parent()->find_function("quicksort"), {m->get_i32(0), m->get_i32(31)});
  // Verify sortedness + checksum.
  Value* acc = g.local_i32("acc");
  Value* ok = g.local_i32("ok");
  g.set(acc, 0);
  g.set(ok, 1);
  g.count_loop(i, 0, 31, [&] {
    Value* a = g.get(g.elem_masked(data, g.get(i), 32));
    Value* c = g.get(g.elem_masked(data, b.add(g.get(i), m->get_i32(1)), 32));
    g.if_then(b.icmp_sgt(a, c), [&] { g.set(ok, 0); });
    // Keep the checksum positive and small so the sortedness flag is
    // recoverable from the i32 return value.
    g.set(acc, b.and_(b.add(b.mul(g.get(acc), m->get_i32(13)), a), m->get_i32(0xfffff)));
  });
  g.ret(b.add(b.mul(g.get(ok), m->get_i32(1000003)), g.get(acc)));
  return m;
}

// ---------------------------------------------------------------------------
// sha: rotate/xor message-schedule rounds over a 16-word buffer.
// ---------------------------------------------------------------------------
std::unique_ptr<ir::Module> build_sha() {
  auto m = std::make_unique<ir::Module>("sha");
  ir::GlobalVariable* kconst =
      m->create_global(Type::i32(), 4, "K",
                       {0x5a827999, 0x6ed9eba1, -0x70e44324, -0x359d3e2a}, true);

  Function* f = m->create_function("main", Type::i32(), {});
  CodeGen g(*m, *f);
  auto& b = g.b();
  Value* w = g.array(Type::i32(), 16, "w");
  Value* i = g.local_i32("i");
  Value* t = g.local_i32("t");
  Value* a = g.local_i32("a");
  Value* e = g.local_i32("e");

  g.count_loop(i, 0, 16, [&] {
    g.set(g.elem(w, g.get(i)), b.mul(g.get(i), m->get_i32(0x9e3779)));
  });

  auto rotl = [&](Value* x, std::int64_t k) {
    return b.or_(b.shl(x, m->get_i32(k)), b.lshr(x, m->get_i32(32 - k)));
  };

  g.set(a, 0x67452301);
  g.set(e, -0x3c2d1e10);
  g.count_loop(t, 0, 64, [&] {
    Value* idx = b.and_(g.get(t), m->get_i32(15));
    // Schedule expansion: w[t&15] = rotl1(w[(t+13)&15] ^ w[(t+8)&15] ^ w[t&15]).
    Value* w13 = g.get(g.elem_masked(w, b.add(g.get(t), m->get_i32(13)), 16));
    Value* w8 = g.get(g.elem_masked(w, b.add(g.get(t), m->get_i32(8)), 16));
    Value* wt = g.get(g.elem(w, idx));
    Value* mixed = rotl(b.xor_(b.xor_(w13, w8), wt), 1);
    g.set(g.elem(w, idx), mixed);
    // Round function.
    Value* kv = g.get(g.elem_masked(kconst, b.lshr(g.get(t), m->get_i32(4)), 4));
    Value* tmp = b.add(b.add(rotl(g.get(a), 5), b.xor_(g.get(e), g.get(a))),
                       b.add(mixed, kv));
    g.set(e, g.get(a));
    g.set(a, tmp);
  });
  g.ret(b.xor_(g.get(a), g.get(e)));
  return m;
}

}  // namespace

const std::vector<std::string>& chstone_benchmark_names() {
  static const std::vector<std::string> names = {"adpcm", "aes",    "blowfish",
                                                 "dhrystone", "gsm",    "matmul",
                                                 "mpeg2",     "qsort",  "sha"};
  return names;
}

std::unique_ptr<ir::Module> build_chstone_like(const std::string& name) {
  if (name == "adpcm") return build_adpcm();
  if (name == "aes") return build_aes();
  if (name == "blowfish") return build_blowfish();
  if (name == "dhrystone") return build_dhrystone();
  if (name == "gsm") return build_gsm();
  if (name == "matmul") return build_matmul();
  if (name == "mpeg2") return build_mpeg2();
  if (name == "qsort") return build_qsort();
  if (name == "sha") return build_sha();
  assert(false && "unknown benchmark name");
  return nullptr;
}

std::vector<std::unique_ptr<ir::Module>> build_all_chstone_like() {
  std::vector<std::unique_ptr<ir::Module>> out;
  for (const std::string& name : chstone_benchmark_names()) {
    out.push_back(build_chstone_like(name));
  }
  return out;
}

}  // namespace autophase::progen
