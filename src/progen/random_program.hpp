// Random HLS-program generator — the CSmith stand-in (§3.4 of the paper).
// Emits -O0-shaped IR modules with bounded loops (guaranteed termination),
// masked array accesses (guaranteed memory safety), helper functions, and a
// checksum-returning main, then filters out anything that fails the HLS
// flow or exceeds the execution budget, exactly as the paper filters CSmith
// output.
#pragma once

#include <cstdint>
#include <memory>

#include "ir/module.hpp"

namespace autophase::progen {

struct GeneratorConfig {
  std::uint64_t seed = 1;
  int max_helpers = 3;          ///< helper functions besides main
  int max_loop_depth = 3;       ///< loop nesting cap
  int max_stmts_per_block = 6;  ///< statements per structured region
  int max_expr_depth = 3;
  std::int64_t max_trip_count = 16;       ///< per-loop bound
  std::int64_t max_dynamic_weight = 4096; ///< product of enclosing trip counts
};

/// Generates one random module (may be degenerate; prefer the filtered API).
std::unique_ptr<ir::Module> generate_random_program(const GeneratorConfig& config);

/// Generates a module that verifies and runs to completion within the
/// interpreter budget, retrying derived seeds as needed (mirrors the paper's
/// CSmith filter). Never returns null.
std::unique_ptr<ir::Module> generate_filtered_program(std::uint64_t seed);

}  // namespace autophase::progen
