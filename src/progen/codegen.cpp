#include "progen/codegen.hpp"

#include <cassert>

namespace autophase::progen {

using ir::BasicBlock;
using ir::ICmpPred;
using ir::Instruction;
using ir::Type;
using ir::Value;

CodeGen::CodeGen(ir::Module& module, ir::Function& function)
    : module_(&module), function_(&function), builder_(module) {
  entry_ = function.create_block("entry");
  BasicBlock* body = function.create_block("body");
  builder_.set_insert_point(entry_);
  builder_.br(body);
  current_ = body;
  builder_.set_insert_point(body);
}

BasicBlock* CodeGen::new_block(const std::string& name) {
  return function_->create_block(name + std::to_string(block_id_++));
}

void CodeGen::move_to(BasicBlock* bb) {
  current_ = bb;
  builder_.set_insert_point(bb);
}

Value* CodeGen::local(Type* type, const std::string& name) {
  // Allocas live at the top of the entry block, before its terminator.
  Instruction* alloca_inst =
      entry_->insert_at(entry_->size() - 1, Instruction::alloca_inst(type, 1, name));
  return alloca_inst;
}

Value* CodeGen::array(Type* elem, std::size_t count, const std::string& name) {
  Instruction* alloca_inst =
      entry_->insert_at(entry_->size() - 1, Instruction::alloca_inst(elem, count, name));
  return alloca_inst;
}

void CodeGen::set(Value* ptr, std::int64_t value) {
  set(ptr, module_->get_int(ptr->type()->pointee(), value));
}

Value* CodeGen::elem_masked(Value* array_ptr, Value* index, std::size_t size_pow2) {
  assert((size_pow2 & (size_pow2 - 1)) == 0 && size_pow2 > 0);
  Value* masked = builder_.and_(
      index, module_->get_int(index->type(), static_cast<std::int64_t>(size_pow2 - 1)));
  return builder_.gep(array_ptr, masked);
}

Value* CodeGen::elem(Value* array_ptr, std::int64_t index) {
  return builder_.gep(array_ptr, module_->get_i64(index));
}

void CodeGen::count_loop(Value* iv_ptr, Value* lo, Value* hi, std::int64_t step,
                         const BodyFn& body) {
  Type* iv_type = iv_ptr->type()->pointee();
  set(iv_ptr, lo);
  BasicBlock* header = new_block("for.h");
  BasicBlock* body_bb = new_block("for.b");
  BasicBlock* exit_bb = new_block("for.e");

  builder_.br(header);
  move_to(header);
  Value* iv = get(iv_ptr);
  Value* cond = builder_.icmp(ICmpPred::kSlt, iv, hi);
  builder_.cond_br(cond, body_bb, exit_bb);

  move_to(body_bb);
  body();
  // Latch: increment and loop.
  Value* iv2 = get(iv_ptr);
  set(iv_ptr, builder_.add(iv2, module_->get_int(iv_type, step)));
  builder_.br(header);

  move_to(exit_bb);
}

void CodeGen::count_loop(Value* iv_ptr, std::int64_t lo, std::int64_t hi, const BodyFn& body) {
  Type* iv_type = iv_ptr->type()->pointee();
  count_loop(iv_ptr, module_->get_int(iv_type, lo), module_->get_int(iv_type, hi), 1, body);
}

void CodeGen::while_loop(const std::function<Value*()>& cond_fn, const BodyFn& body) {
  BasicBlock* header = new_block("wh.h");
  BasicBlock* body_bb = new_block("wh.b");
  BasicBlock* exit_bb = new_block("wh.e");
  builder_.br(header);
  move_to(header);
  Value* cond = cond_fn();
  builder_.cond_br(cond, body_bb, exit_bb);
  move_to(body_bb);
  body();
  builder_.br(header);
  move_to(exit_bb);
}

void CodeGen::if_then(Value* cond, const BodyFn& then_body) {
  BasicBlock* then_bb = new_block("if.t");
  BasicBlock* join = new_block("if.j");
  builder_.cond_br(cond, then_bb, join);
  move_to(then_bb);
  then_body();
  builder_.br(join);
  move_to(join);
}

void CodeGen::if_then_else(Value* cond, const BodyFn& then_body, const BodyFn& else_body) {
  BasicBlock* then_bb = new_block("if.t");
  BasicBlock* else_bb = new_block("if.f");
  BasicBlock* join = new_block("if.j");
  builder_.cond_br(cond, then_bb, else_bb);
  move_to(then_bb);
  then_body();
  builder_.br(join);
  move_to(else_bb);
  else_body();
  builder_.br(join);
  move_to(join);
}

void CodeGen::switch_cases(Value* selector,
                           const std::vector<std::pair<std::int64_t, BodyFn>>& cases,
                           const BodyFn& default_body) {
  BasicBlock* default_bb = new_block("sw.d");
  BasicBlock* join = new_block("sw.j");
  Instruction* sw = builder_.switch_inst(selector, default_bb);
  std::vector<BasicBlock*> case_blocks;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    BasicBlock* cb = new_block("sw.c");
    sw->add_switch_case(module_->get_int(selector->type(), cases[i].first), cb);
    case_blocks.push_back(cb);
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    move_to(case_blocks[i]);
    cases[i].second();
    builder_.br(join);
  }
  move_to(default_bb);
  default_body();
  builder_.br(join);
  move_to(join);
}

void CodeGen::ret(std::int64_t value) {
  builder_.ret(module_->get_int(function_->return_type(), value));
}

}  // namespace autophase::progen
