// The nine "real benchmark" programs of the paper's evaluation (adapted, as
// the paper's were, from CHStone and the LegUp examples): adpcm, aes,
// blowfish, dhrystone, gsm, matmul, mpeg2, qsort, sha.
//
// Substitution note (DESIGN.md §2): these are hand-built IR kernels that
// mimic each benchmark's dominant computation structure — table lookups and
// xor rounds for aes, feistel rounds for blowfish, a triple loop nest for
// matmul, branchy fixed-point quantisation for adpcm, and so on — rather
// than bit-exact CHStone sources (no C frontend exists in this offline
// reproduction). Each returns a self-checking checksum from main().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace autophase::progen {

/// Benchmark names in the paper's order.
const std::vector<std::string>& chstone_benchmark_names();

/// Builds one benchmark module by name; asserts on unknown names.
std::unique_ptr<ir::Module> build_chstone_like(const std::string& name);

/// Builds all nine benchmarks.
std::vector<std::unique_ptr<ir::Module>> build_all_chstone_like();

}  // namespace autophase::progen
