#include "progen/random_program.hpp"

#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "ir/verifier.hpp"
#include "progen/codegen.hpp"
#include "support/rng.hpp"

namespace autophase::progen {

namespace {

using ir::Function;
using ir::ICmpPred;
using ir::Opcode;
using ir::Type;
using ir::Value;

class ProgramGenerator {
 public:
  ProgramGenerator(const GeneratorConfig& config)
      : config_(config), rng_(config.seed), module_(std::make_unique<ir::Module>(
                                                "rand" + std::to_string(config.seed))) {}

  std::unique_ptr<ir::Module> generate() {
    // Optional constant lookup table (ROM), used by some expressions.
    if (rng_.chance(0.6)) {
      std::vector<std::int64_t> init;
      const std::size_t n = 1u << rng_.uniform_int(3, 5);  // 8..32 entries
      for (std::size_t i = 0; i < n; ++i) init.push_back(rng_.uniform_int(-128, 127));
      rom_ = module_->create_global(Type::i32(), n, "lut", std::move(init),
                                    /*is_constant_data=*/true);
      rom_size_ = n;
    }

    const int helper_count = static_cast<int>(rng_.uniform_int(0, config_.max_helpers));
    for (int i = 0; i < helper_count; ++i) emit_helper(i);
    emit_main();
    return std::move(module_);
  }

 private:
  struct Scope {
    std::vector<Value*> scalars;                        // i32* allocas
    std::vector<std::pair<Value*, std::size_t>> arrays; // (i32* alloca, pow2 size)
  };

  GeneratorConfig config_;
  Rng rng_;
  std::unique_ptr<ir::Module> module_;
  std::vector<Function*> helpers_;
  ir::GlobalVariable* rom_ = nullptr;
  std::size_t rom_size_ = 0;

  // Per-function generation state.
  CodeGen* g_ = nullptr;
  Scope scope_;
  int loop_depth_ = 0;
  std::int64_t dynamic_weight_ = 1;
  int var_id_ = 0;

  Value* c32(std::int64_t v) { return module_->get_i32(v); }

  Value* random_constant() {
    switch (rng_.uniform_int(0, 4)) {
      case 0: return c32(0);
      case 1: return c32(1);
      case 2: return c32(1LL << rng_.uniform_int(1, 6));
      case 3: return c32(rng_.uniform_int(-16, 16));
      default: return c32(rng_.uniform_int(-1024, 1024));
    }
  }

  Value* gen_expr(int depth) {
    auto& b = g_->b();
    if (depth <= 0 || rng_.chance(0.3)) {
      // Leaf.
      const int kind = static_cast<int>(rng_.uniform_int(0, 3));
      if (kind == 0 && !scope_.scalars.empty()) {
        return g_->get(rng_.pick(scope_.scalars));
      }
      if (kind == 1 && !scope_.arrays.empty()) {
        const auto& [arr, size] = rng_.pick(scope_.arrays);
        return g_->get(g_->elem_masked(arr, gen_expr(0), size));
      }
      if (kind == 2 && rom_ != nullptr) {
        return g_->get(g_->elem_masked(rom_, gen_expr(0), rom_size_));
      }
      return random_constant();
    }
    switch (rng_.uniform_int(0, 9)) {
      case 0: return b.add(gen_expr(depth - 1), gen_expr(depth - 1));
      case 1: return b.sub(gen_expr(depth - 1), gen_expr(depth - 1));
      case 2: return b.mul(gen_expr(depth - 1), gen_expr(depth - 1));
      case 3: return b.and_(gen_expr(depth - 1), gen_expr(depth - 1));
      case 4: return b.or_(gen_expr(depth - 1), gen_expr(depth - 1));
      case 5: return b.xor_(gen_expr(depth - 1), gen_expr(depth - 1));
      case 6: {
        // Bounded shift amount.
        Value* amount = b.and_(gen_expr(depth - 1), c32(15));
        return rng_.chance(0.5) ? b.shl(gen_expr(depth - 1), amount)
                                : b.lshr(gen_expr(depth - 1), amount);
      }
      case 7: {
        // Division / remainder (defined semantics even for zero divisors).
        Value* divisor = gen_expr(depth - 1);
        return rng_.chance(0.5) ? b.sdiv(gen_expr(depth - 1), divisor)
                                : b.urem(gen_expr(depth - 1), divisor);
      }
      case 8: {
        Value* cond = b.icmp(random_pred(), gen_expr(depth - 1), gen_expr(depth - 1));
        return b.select(cond, gen_expr(depth - 1), gen_expr(depth - 1));
      }
      default: {
        // Width round-trip (exercises cast features and combine rules).
        Type* narrow = rng_.chance(0.5) ? Type::i8() : Type::i16();
        Value* t = b.trunc(gen_expr(depth - 1), narrow);
        return rng_.chance(0.5) ? b.sext(t, Type::i32()) : b.zext(t, Type::i32());
      }
    }
  }

  ICmpPred random_pred() {
    static constexpr ICmpPred kPreds[] = {ICmpPred::kEq,  ICmpPred::kNe,  ICmpPred::kSlt,
                                          ICmpPred::kSle, ICmpPred::kSgt, ICmpPred::kSge,
                                          ICmpPred::kUlt, ICmpPred::kUgt};
      return kPreds[rng_.uniform_int(0, 7)];
  }

  Value* call_helper() {
    Function* callee = rng_.pick(helpers_);
    std::vector<Value*> args;
    for (std::size_t i = 0; i < callee->arg_count(); ++i) args.push_back(gen_expr(1));
    return g_->b().call(callee, std::move(args));
  }

  void gen_stmt(int depth) {
    auto& b = g_->b();
    const int choice = static_cast<int>(rng_.uniform_int(0, 9));
    switch (choice) {
      case 0:
      case 1: {  // scalar assignment
        if (scope_.scalars.empty()) break;
        g_->set(rng_.pick(scope_.scalars), gen_expr(config_.max_expr_depth));
        break;
      }
      case 2: {  // array store
        if (scope_.arrays.empty()) break;
        const auto& [arr, size] = rng_.pick(scope_.arrays);
        g_->set(g_->elem_masked(arr, gen_expr(1), size), gen_expr(config_.max_expr_depth));
        break;
      }
      case 3: {  // if-then
        Value* cond = b.icmp(random_pred(), gen_expr(1), gen_expr(1));
        g_->if_then(cond, [&] { gen_block(depth - 1); });
        break;
      }
      case 4: {  // if-then-else
        Value* cond = b.icmp(random_pred(), gen_expr(1), gen_expr(1));
        g_->if_then_else(cond, [&] { gen_block(depth - 1); }, [&] { gen_block(depth - 1); });
        break;
      }
      case 5:
      case 6: {  // bounded loop
        if (loop_depth_ >= config_.max_loop_depth) break;
        const std::int64_t trips = rng_.uniform_int(2, config_.max_trip_count);
        if (dynamic_weight_ * trips > config_.max_dynamic_weight) break;
        Value* iv = g_->local_i32("i" + std::to_string(var_id_++));
        scope_.scalars.push_back(iv);
        ++loop_depth_;
        dynamic_weight_ *= trips;
        g_->count_loop(iv, 0, trips, [&] { gen_block(depth - 1); });
        dynamic_weight_ /= trips;
        --loop_depth_;
        break;
      }
      case 7: {  // switch
        std::vector<std::pair<std::int64_t, CodeGen::BodyFn>> cases;
        const int n = static_cast<int>(rng_.uniform_int(2, 4));
        for (int i = 0; i < n; ++i) {
          cases.emplace_back(i, [this, depth] { gen_block(depth - 1); });
        }
        Value* sel = b.and_(gen_expr(1), c32(7));
        g_->switch_cases(sel, cases, [this, depth] { gen_block(depth - 1); });
        break;
      }
      case 8: {  // helper call
        if (helpers_.empty() || scope_.scalars.empty()) break;
        g_->set(rng_.pick(scope_.scalars), call_helper());
        break;
      }
      default: {  // accumulate into a scalar
        if (scope_.scalars.empty()) break;
        Value* ptr = rng_.pick(scope_.scalars);
        g_->set(ptr, b.add(g_->get(ptr), gen_expr(2)));
        break;
      }
    }
  }

  void gen_block(int depth) {
    if (depth < 0) return;
    const int stmts = static_cast<int>(rng_.uniform_int(1, config_.max_stmts_per_block));
    for (int i = 0; i < stmts; ++i) gen_stmt(depth);
  }

  void setup_scope(int scalars, int arrays) {
    scope_ = Scope{};
    var_id_ = 0;
    for (int i = 0; i < scalars; ++i) {
      Value* v = g_->local_i32("v" + std::to_string(var_id_++));
      g_->set(v, rng_.uniform_int(-64, 64));
      scope_.scalars.push_back(v);
    }
    for (int i = 0; i < arrays; ++i) {
      const std::size_t size = 1u << rng_.uniform_int(3, 6);  // 8..64
      Value* a = g_->array(Type::i32(), size, "a" + std::to_string(var_id_++));
      scope_.arrays.emplace_back(a, size);
      // Initialise with a tiny fill loop so reads are deterministic even
      // before any optimisation.
      Value* iv = g_->local_i32("ii" + std::to_string(var_id_++));
      g_->count_loop(iv, 0, static_cast<std::int64_t>(size), [&] {
        Value* i_val = g_->get(iv);
        g_->set(g_->elem_masked(scope_.arrays.back().first, i_val, size),
                g_->b().mul(i_val, c32(rng_.uniform_int(1, 9))));
      });
    }
  }

  void emit_helper(int index) {
    const int params = static_cast<int>(rng_.uniform_int(1, 3));
    std::vector<Type*> param_types(static_cast<std::size_t>(params), Type::i32());
    Function* f = module_->create_function("helper" + std::to_string(index), Type::i32(),
                                           param_types);
    CodeGen g(*module_, *f);
    g_ = &g;
    loop_depth_ = 0;
    dynamic_weight_ = 4;  // helpers may be called from loops; keep them lean
    setup_scope(static_cast<int>(rng_.uniform_int(1, 3)), rng_.chance(0.3) ? 1 : 0);

    // Copy parameters into locals (the O0 way).
    std::vector<Value*> param_ptrs;
    for (int i = 0; i < params; ++i) {
      Value* p = g.local_i32("p" + std::to_string(i));
      g.set(p, f->arg(static_cast<std::size_t>(i)));
      param_ptrs.push_back(p);
      scope_.scalars.push_back(p);
    }

    // Early-return guard pattern (partial-inliner / branch-folding bait).
    if (rng_.chance(0.4)) {
      Value* cond = g.b().icmp_eq(g.get(param_ptrs[0]), c32(0));
      g.if_then(cond, [&] { /* fallthrough guard: result stays initial */ });
      // Re-written as an explicit early return shape:
    }

    gen_block(2);

    Value* acc = scope_.scalars.front();
    for (Value* s : scope_.scalars) {
      g.set(acc, g.b().xor_(g.get(acc), g.get(s)));
    }
    g.ret(g.get(acc));
    helpers_.push_back(f);
    g_ = nullptr;
  }

  void emit_main() {
    Function* f = module_->create_function("main", Type::i32(), {});
    CodeGen g(*module_, *f);
    g_ = &g;
    loop_depth_ = 0;
    dynamic_weight_ = 1;
    setup_scope(static_cast<int>(rng_.uniform_int(3, 7)),
                static_cast<int>(rng_.uniform_int(1, 3)));

    gen_block(3);

    // Checksum: mix all scalars and array contents into the return value.
    Value* sum = g.local_i32("checksum");
    g.set(sum, 0);
    for (Value* s : scope_.scalars) {
      g.set(sum, g.b().add(g.b().mul(g.get(sum), c32(31)), g.get(s)));
    }
    for (const auto& [arr, size] : scope_.arrays) {
      Value* iv = g.local_i32("ci" + std::to_string(var_id_++));
      g.count_loop(iv, 0, static_cast<std::int64_t>(size), [&] {
        Value* v = g.get(g.elem_masked(arr, g.get(iv), size));
        g.set(sum, g.b().xor_(g.b().add(g.get(sum), g.get(sum)), v));
      });
    }
    g.ret(g.get(sum));
    g_ = nullptr;
  }
};

}  // namespace

std::unique_ptr<ir::Module> generate_random_program(const GeneratorConfig& config) {
  ProgramGenerator gen(config);
  return gen.generate();
}

std::unique_ptr<ir::Module> generate_filtered_program(std::uint64_t seed) {
  SplitMix64 reseeder(seed);
  for (int attempt = 0; attempt < 64; ++attempt) {
    GeneratorConfig config;
    config.seed = attempt == 0 ? seed : reseeder.next();
    auto module = generate_random_program(config);
    if (!ir::verify_module(*module).is_ok()) continue;
    interp::InterpreterOptions opts;
    opts.max_instructions = 2'000'000;  // the paper's "five minutes on CPU" filter
    auto run = interp::run_module(*module, opts);
    if (!run.is_ok()) continue;
    return module;
  }
  // Fall back to a minimal safe program (cannot fail).
  auto module = std::make_unique<ir::Module>("fallback" + std::to_string(seed));
  Function* f = module->create_function("main", Type::i32(), {});
  CodeGen g(*module, *f);
  Value* v = g.local_i32("v");
  g.set(v, static_cast<std::int64_t>(seed & 0xff));
  Value* iv = g.local_i32("i");
  g.count_loop(iv, 0, 8, [&] { g.set(v, g.b().add(g.get(v), g.get(iv))); });
  g.ret(g.get(v));
  return module;
}

}  // namespace autophase::progen
