// Structured code generation helper that emits Clang -O0 style IR: every
// local variable lives in an entry-block alloca and is accessed through
// load/store, loops are while-shaped (header: load+compare+condbr), and
// expressions are emitted as-is with no folding. This is the input shape the
// phase-ordering problem starts from — mem2reg/sroa must earn the SSA form,
// loop-rotate must earn the do-while form, exactly as in the paper's flow.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/builder.hpp"

namespace autophase::progen {

class CodeGen {
 public:
  /// Creates the entry block (alloca area) and the first body block.
  CodeGen(ir::Module& module, ir::Function& function);

  [[nodiscard]] ir::IRBuilder& b() noexcept { return builder_; }
  [[nodiscard]] ir::Module& module() noexcept { return *module_; }
  [[nodiscard]] ir::Function& function() noexcept { return *function_; }
  [[nodiscard]] ir::BasicBlock* current() noexcept { return current_; }

  // ---- Variables (entry-block allocas) ----
  ir::Value* local(ir::Type* type, const std::string& name);
  ir::Value* local_i32(const std::string& name) { return local(ir::Type::i32(), name); }
  ir::Value* array(ir::Type* elem, std::size_t count, const std::string& name);

  /// load/store shorthands.
  ir::Value* get(ir::Value* ptr) { return builder_.load(ptr); }
  void set(ir::Value* ptr, ir::Value* value) { builder_.store(value, ptr); }
  void set(ir::Value* ptr, std::int64_t value);
  /// Disambiguates integer literals (0 would otherwise match Value* too).
  void set(ir::Value* ptr, int value) { set(ptr, static_cast<std::int64_t>(value)); }

  /// &arr[i] with a power-of-two mask keeping the access in bounds (the
  /// generator's memory-safety discipline).
  ir::Value* elem_masked(ir::Value* array_ptr, ir::Value* index, std::size_t size_pow2);
  /// &arr[i] unmasked (for indices the caller guarantees in range).
  ir::Value* elem(ir::Value* array_ptr, ir::Value* index) {
    return builder_.gep(array_ptr, index);
  }
  ir::Value* elem(ir::Value* array_ptr, std::int64_t index);
  ir::Value* elem(ir::Value* array_ptr, int index) {
    return elem(array_ptr, static_cast<std::int64_t>(index));
  }

  // ---- Structured control flow ----
  using BodyFn = std::function<void()>;

  /// for (*iv = lo; *iv < hi; *iv += step) body();  -- while-shaped CFG.
  void count_loop(ir::Value* iv_ptr, ir::Value* lo, ir::Value* hi, std::int64_t step,
                  const BodyFn& body);
  void count_loop(ir::Value* iv_ptr, std::int64_t lo, std::int64_t hi, const BodyFn& body);

  /// while (cond_fn()) body(); cond_fn emits into the header and returns i1.
  void while_loop(const std::function<ir::Value*()>& cond_fn, const BodyFn& body);

  void if_then(ir::Value* cond, const BodyFn& then_body);
  void if_then_else(ir::Value* cond, const BodyFn& then_body, const BodyFn& else_body);

  /// switch over constant cases; each case falls out to the join block.
  void switch_cases(ir::Value* selector,
                    const std::vector<std::pair<std::int64_t, BodyFn>>& cases,
                    const BodyFn& default_body);

  /// Terminates the current block with ret.
  void ret(ir::Value* value) { builder_.ret(value); }
  void ret(std::int64_t value);
  void ret(int value) { ret(static_cast<std::int64_t>(value)); }
  void ret_void() { builder_.ret_void(); }

 private:
  ir::BasicBlock* new_block(const std::string& name);
  void move_to(ir::BasicBlock* bb);

  ir::Module* module_;
  ir::Function* function_;
  ir::IRBuilder builder_;
  ir::BasicBlock* entry_;
  ir::BasicBlock* current_;
  int block_id_ = 0;
};

}  // namespace autophase::progen
