// The 56 static program features of Table 2, with the paper's exact
// indices. Extracted module-wide (sum over all functions), exactly as the
// AutoPhase IR feature extractor does.
//
// Two definitions the paper leaves implicit are fixed here:
//  * #15 "Number of branches" counts conditional branches (condbr);
//    #32 "Number of Br insts" counts all branch instructions (br + condbr),
//    matching LLVM where both carry BranchInst opcode.
//  * #14 and #40 both equal the total phi count (all phis sit at block
//    heads in well-formed IR); the original extractor has the same aliasing.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ir/module.hpp"

namespace autophase {
class ThreadPool;
}

namespace autophase::features {

inline constexpr int kNumFeatures = 56;

using FeatureVector = std::array<std::int64_t, kNumFeatures>;

/// Feature name per Table 2 index.
std::string_view feature_name(int index) noexcept;

/// Extracts all 56 features from a module in a single allocation-free walk
/// (no per-block snapshot vectors, no per-feature re-walks). Reads lazy CoW
/// rollout clones through Function::reading_body(), so an unmutated clone
/// is extracted without materialising anything.
FeatureVector extract_features(const ir::Module& module);

/// Feature-major (structure-of-arrays) features for a batch of modules:
/// `data[f * batch + i]` is feature `f` of module `i`. Rows of one feature
/// sit contiguously, which is the layout the batched observation builders
/// consume without per-module scatter.
struct BatchFeatures {
  std::size_t batch = 0;
  std::vector<std::int64_t> data;  // kNumFeatures x batch, feature-major

  [[nodiscard]] std::int64_t at(std::size_t module_index, int feature) const noexcept {
    return data[static_cast<std::size_t>(feature) * batch + module_index];
  }
  /// AoS view of one module's features (for call sites wanting the classic
  /// FeatureVector).
  [[nodiscard]] FeatureVector row(std::size_t module_index) const noexcept;
};

/// Batched extraction over a span of modules. With a pool, modules extract
/// in parallel; results are written to disjoint SoA slots, so the output is
/// bit-identical to the serial path regardless of thread count.
BatchFeatures extract_features_batch(std::span<const ir::Module* const> modules,
                                     ThreadPool* pool = nullptr);

}  // namespace autophase::features
