// The 56 static program features of Table 2, with the paper's exact
// indices. Extracted module-wide (sum over all functions), exactly as the
// AutoPhase IR feature extractor does.
//
// Two definitions the paper leaves implicit are fixed here:
//  * #15 "Number of branches" counts conditional branches (condbr);
//    #32 "Number of Br insts" counts all branch instructions (br + condbr),
//    matching LLVM where both carry BranchInst opcode.
//  * #14 and #40 both equal the total phi count (all phis sit at block
//    heads in well-formed IR); the original extractor has the same aliasing.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "ir/module.hpp"

namespace autophase::features {

inline constexpr int kNumFeatures = 56;

using FeatureVector = std::array<std::int64_t, kNumFeatures>;

/// Feature name per Table 2 index.
std::string_view feature_name(int index) noexcept;

/// Extracts all 56 features from a module.
FeatureVector extract_features(const ir::Module& module);

}  // namespace autophase::features
