#include "features/features.hpp"

#include "ir/cfg.hpp"

namespace autophase::features {

namespace {

using ir::BasicBlock;
using ir::ConstantInt;
using ir::Instruction;
using ir::Opcode;

constexpr std::array<std::string_view, kNumFeatures> kFeatureNames = {
    "Number of BB where total args for phi nodes > 5",
    "Number of BB where total args for phi nodes is [1,5]",
    "Number of BB's with 1 predecessor",
    "Number of BB's with 1 predecessor and 1 successor",
    "Number of BB's with 1 predecessor and 2 successors",
    "Number of BB's with 1 successor",
    "Number of BB's with 2 predecessors",
    "Number of BB's with 2 predecessors and 1 successor",
    "Number of BB's with 2 predecessors and successors",
    "Number of BB's with 2 successors",
    "Number of BB's with >2 predecessors",
    "Number of BB's with Phi node # in range (0,3]",
    "Number of BB's with more than 3 Phi nodes",
    "Number of BB's with no Phi nodes",
    "Number of Phi-nodes at beginning of BB",
    "Number of branches",
    "Number of calls that return an int",
    "Number of critical edges",
    "Number of edges",
    "Number of occurrences of 32-bit integer constants",
    "Number of occurrences of 64-bit integer constants",
    "Number of occurrences of constant 0",
    "Number of occurrences of constant 1",
    "Number of unconditional branches",
    "Number of Binary operations with a constant operand",
    "Number of AShr insts",
    "Number of Add insts",
    "Number of Alloca insts",
    "Number of And insts",
    "Number of BB's with instructions between [15,500]",
    "Number of BB's with less than 15 instructions",
    "Number of BitCast insts",
    "Number of Br insts",
    "Number of Call insts",
    "Number of GetElementPtr insts",
    "Number of ICmp insts",
    "Number of LShr insts",
    "Number of Load insts",
    "Number of Mul insts",
    "Number of Or insts",
    "Number of PHI insts",
    "Number of Ret insts",
    "Number of SExt insts",
    "Number of Select insts",
    "Number of Shl insts",
    "Number of Store insts",
    "Number of Sub insts",
    "Number of Trunc insts",
    "Number of Xor insts",
    "Number of ZExt insts",
    "Number of basic blocks",
    "Number of instructions (of all types)",
    "Number of memory instructions",
    "Number of non-external functions",
    "Total arguments to Phi nodes",
    "Number of Unary operations",
};

}  // namespace

std::string_view feature_name(int index) noexcept {
  return index >= 0 && index < kNumFeatures ? kFeatureNames[static_cast<std::size_t>(index)]
                                            : "?";
}

FeatureVector extract_features(const ir::Module& module) {
  FeatureVector fv{};
  fv.fill(0);

  for (const ir::Function* f : module.functions()) {
    ++fv[53];  // non-external functions (all of ours are defined)
    for (BasicBlock* bb : const_cast<ir::Function*>(f)->blocks()) {
      ++fv[50];  // basic blocks
      const std::size_t preds = bb->unique_predecessors().size();
      const std::size_t succs = bb->successors().size();
      if (preds == 1) ++fv[2];
      if (preds == 1 && succs == 1) ++fv[3];
      if (preds == 1 && succs == 2) ++fv[4];
      if (succs == 1) ++fv[5];
      if (preds == 2) ++fv[6];
      if (preds == 2 && succs == 1) ++fv[7];
      if (preds == 2 && succs == 2) ++fv[8];
      if (succs == 2) ++fv[9];
      if (preds > 2) ++fv[10];

      std::int64_t phi_count = 0;
      std::int64_t phi_args = 0;
      const std::size_t inst_count = bb->size();
      if (inst_count < 15) {
        ++fv[30];
      } else if (inst_count <= 500) {
        ++fv[29];
      }

      for (Instruction* inst : bb->instructions()) {
        ++fv[51];  // all instructions
        // Constant-operand occurrence features (19-22) count operand slots.
        for (const ir::Value* op : inst->operands()) {
          if (const ConstantInt* ci = ir::as_constant_int(op)) {
            if (ci->type()->bits() == 32) ++fv[19];
            if (ci->type()->bits() == 64) ++fv[20];
            if (ci->is_zero()) ++fv[21];
            if (ci->is_one()) ++fv[22];
          }
        }
        if (inst->is_binary() &&
            (ir::as_constant_int(inst->operand(0)) != nullptr ||
             ir::as_constant_int(inst->operand(1)) != nullptr)) {
          ++fv[24];
        }
        switch (inst->opcode()) {
          case Opcode::kPhi:
            ++phi_count;
            phi_args += static_cast<std::int64_t>(inst->incoming_count());
            break;
          case Opcode::kBr:
            ++fv[23];  // unconditional branches
            ++fv[32];  // Br insts
            break;
          case Opcode::kCondBr:
            ++fv[15];  // branches
            ++fv[32];
            break;
          case Opcode::kCall:
            ++fv[33];
            if (inst->type()->is_int()) ++fv[16];
            break;
          case Opcode::kAShr: ++fv[25]; break;
          case Opcode::kAdd: ++fv[26]; break;
          case Opcode::kAlloca: ++fv[27]; break;
          case Opcode::kAnd: ++fv[28]; break;
          case Opcode::kBitCast: ++fv[31]; break;
          case Opcode::kGep: ++fv[34]; break;
          case Opcode::kICmp: ++fv[35]; break;
          case Opcode::kLShr: ++fv[36]; break;
          case Opcode::kLoad: ++fv[37]; break;
          case Opcode::kMul: ++fv[38]; break;
          case Opcode::kOr: ++fv[39]; break;
          case Opcode::kRet: ++fv[41]; break;
          case Opcode::kSExt: ++fv[42]; break;
          case Opcode::kSelect: ++fv[43]; break;
          case Opcode::kShl: ++fv[44]; break;
          case Opcode::kStore: ++fv[45]; break;
          case Opcode::kSub: ++fv[46]; break;
          case Opcode::kTrunc: ++fv[47]; break;
          case Opcode::kXor: ++fv[48]; break;
          case Opcode::kZExt: ++fv[49]; break;
          default: break;
        }
        switch (inst->opcode()) {
          case Opcode::kAlloca:
          case Opcode::kLoad:
          case Opcode::kStore:
          case Opcode::kGep:
          case Opcode::kMemSet:
          case Opcode::kMemCpy: ++fv[52]; break;  // memory instructions
          default: break;
        }
        if (inst->is_cast()) ++fv[55];  // unary operations
      }

      if (phi_args > 5) ++fv[0];
      if (phi_args >= 1 && phi_args <= 5) ++fv[1];
      if (phi_count > 0 && phi_count <= 3) ++fv[11];
      if (phi_count > 3) ++fv[12];
      if (phi_count == 0) ++fv[13];
      fv[14] += phi_count;
      fv[40] += phi_count;
      fv[54] += phi_args;
    }

    // Edge features need the terminators of every block.
    fv[18] += static_cast<std::int64_t>(ir::edge_count(*f));
    for (BasicBlock* bb : const_cast<ir::Function*>(f)->blocks()) {
      for (BasicBlock* succ : bb->successors()) {
        if (ir::is_critical_edge(bb, succ)) ++fv[17];
      }
    }
  }
  return fv;
}

}  // namespace autophase::features
