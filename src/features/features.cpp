#include "features/features.hpp"

#include "support/thread_pool.hpp"

namespace autophase::features {

namespace {

using ir::BasicBlock;
using ir::ConstantInt;
using ir::Instruction;
using ir::Opcode;

constexpr std::array<std::string_view, kNumFeatures> kFeatureNames = {
    "Number of BB where total args for phi nodes > 5",
    "Number of BB where total args for phi nodes is [1,5]",
    "Number of BB's with 1 predecessor",
    "Number of BB's with 1 predecessor and 1 successor",
    "Number of BB's with 1 predecessor and 2 successors",
    "Number of BB's with 1 successor",
    "Number of BB's with 2 predecessors",
    "Number of BB's with 2 predecessors and 1 successor",
    "Number of BB's with 2 predecessors and successors",
    "Number of BB's with 2 successors",
    "Number of BB's with >2 predecessors",
    "Number of BB's with Phi node # in range (0,3]",
    "Number of BB's with more than 3 Phi nodes",
    "Number of BB's with no Phi nodes",
    "Number of Phi-nodes at beginning of BB",
    "Number of branches",
    "Number of calls that return an int",
    "Number of critical edges",
    "Number of edges",
    "Number of occurrences of 32-bit integer constants",
    "Number of occurrences of 64-bit integer constants",
    "Number of occurrences of constant 0",
    "Number of occurrences of constant 1",
    "Number of unconditional branches",
    "Number of Binary operations with a constant operand",
    "Number of AShr insts",
    "Number of Add insts",
    "Number of Alloca insts",
    "Number of And insts",
    "Number of BB's with instructions between [15,500]",
    "Number of BB's with less than 15 instructions",
    "Number of BitCast insts",
    "Number of Br insts",
    "Number of Call insts",
    "Number of GetElementPtr insts",
    "Number of ICmp insts",
    "Number of LShr insts",
    "Number of Load insts",
    "Number of Mul insts",
    "Number of Or insts",
    "Number of PHI insts",
    "Number of Ret insts",
    "Number of SExt insts",
    "Number of Select insts",
    "Number of Shl insts",
    "Number of Store insts",
    "Number of Sub insts",
    "Number of Trunc insts",
    "Number of Xor insts",
    "Number of ZExt insts",
    "Number of basic blocks",
    "Number of instructions (of all types)",
    "Number of memory instructions",
    "Number of non-external functions",
    "Total arguments to Phi nodes",
    "Number of Unary operations",
};

/// Distinct predecessor count, capped at 3: the block-shape features only
/// distinguish 1 / 2 / more-than-2 predecessors, so the pointer dedup of
/// unique_predecessors() collapses to a fixed-size scan with no allocation.
std::size_t distinct_pred_count_capped(const BasicBlock* bb) noexcept {
  const auto& preds = bb->predecessors();
  const BasicBlock* seen[3] = {nullptr, nullptr, nullptr};
  std::size_t n = 0;
  for (const BasicBlock* p : preds) {
    bool dup = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (seen[j] == p) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    seen[n] = p;
    if (++n == 3) break;
  }
  return n;
}

/// More than one *distinct* predecessor (the receiving-end half of the
/// critical-edge test; the predecessor list carries multiplicity).
bool has_multiple_unique_preds(const BasicBlock* bb) noexcept {
  const auto& preds = bb->predecessors();
  for (std::size_t i = 1; i < preds.size(); ++i) {
    if (preds[i] != preds[0]) return true;
  }
  return false;
}

}  // namespace

std::string_view feature_name(int index) noexcept {
  return index >= 0 && index < kNumFeatures ? kFeatureNames[static_cast<std::size_t>(index)]
                                            : "?";
}

// Single pass over every instruction with no intermediate containers: the
// old extractor snapshotted blocks(), instructions(), successors() and
// unique_predecessors() per block (four heap vectors per block), which
// dominated observation time in profile. All counters are commutative sums,
// so folding the old second edge/critical-edge loop into the main walk
// produces bit-identical values.
FeatureVector extract_features(const ir::Module& module) {
  FeatureVector fv{};
  fv.fill(0);

  for (std::size_t fi = 0; fi < module.function_count(); ++fi) {
    // Read through the CoW source while the body is lazy: extracting
    // features from an unmutated rollout clone must not deep-copy it.
    const ir::Function* f = module.function(fi)->reading_body();
    ++fv[53];  // non-external functions (all of ours are defined)
    for (std::size_t bi = 0; bi < f->block_count(); ++bi) {
      const BasicBlock* bb = f->block(bi);
      ++fv[50];  // basic blocks
      const Instruction* term = bb->terminator();
      const std::size_t preds = distinct_pred_count_capped(bb);
      const std::size_t succs = term != nullptr ? term->successor_count() : 0;
      if (preds == 1) ++fv[2];
      if (preds == 1 && succs == 1) ++fv[3];
      if (preds == 1 && succs == 2) ++fv[4];
      if (succs == 1) ++fv[5];
      if (preds == 2) ++fv[6];
      if (preds == 2 && succs == 1) ++fv[7];
      if (preds == 2 && succs == 2) ++fv[8];
      if (succs == 2) ++fv[9];
      if (preds > 2) ++fv[10];

      std::int64_t phi_count = 0;
      std::int64_t phi_args = 0;
      const std::size_t inst_count = bb->size();
      if (inst_count < 15) {
        ++fv[30];
      } else if (inst_count <= 500) {
        ++fv[29];
      }

      for (std::size_t ii = 0; ii < bb->size(); ++ii) {
        const Instruction* inst = bb->inst(ii);
        ++fv[51];  // all instructions
        // Constant-operand occurrence features (19-22) count operand slots.
        for (const ir::Value* op : inst->operands()) {
          if (const ConstantInt* ci = ir::as_constant_int(op)) {
            if (ci->type()->bits() == 32) ++fv[19];
            if (ci->type()->bits() == 64) ++fv[20];
            if (ci->is_zero()) ++fv[21];
            if (ci->is_one()) ++fv[22];
          }
        }
        if (inst->is_binary() &&
            (ir::as_constant_int(inst->operand(0)) != nullptr ||
             ir::as_constant_int(inst->operand(1)) != nullptr)) {
          ++fv[24];
        }
        switch (inst->opcode()) {
          case Opcode::kPhi:
            ++phi_count;
            phi_args += static_cast<std::int64_t>(inst->incoming_count());
            break;
          case Opcode::kBr:
            ++fv[23];  // unconditional branches
            ++fv[32];  // Br insts
            break;
          case Opcode::kCondBr:
            ++fv[15];  // branches
            ++fv[32];
            break;
          case Opcode::kCall:
            ++fv[33];
            if (inst->type()->is_int()) ++fv[16];
            break;
          case Opcode::kAShr: ++fv[25]; break;
          case Opcode::kAdd: ++fv[26]; break;
          case Opcode::kAlloca: ++fv[27]; break;
          case Opcode::kAnd: ++fv[28]; break;
          case Opcode::kBitCast: ++fv[31]; break;
          case Opcode::kGep: ++fv[34]; break;
          case Opcode::kICmp: ++fv[35]; break;
          case Opcode::kLShr: ++fv[36]; break;
          case Opcode::kLoad: ++fv[37]; break;
          case Opcode::kMul: ++fv[38]; break;
          case Opcode::kOr: ++fv[39]; break;
          case Opcode::kRet: ++fv[41]; break;
          case Opcode::kSExt: ++fv[42]; break;
          case Opcode::kSelect: ++fv[43]; break;
          case Opcode::kShl: ++fv[44]; break;
          case Opcode::kStore: ++fv[45]; break;
          case Opcode::kSub: ++fv[46]; break;
          case Opcode::kTrunc: ++fv[47]; break;
          case Opcode::kXor: ++fv[48]; break;
          case Opcode::kZExt: ++fv[49]; break;
          default: break;
        }
        switch (inst->opcode()) {
          case Opcode::kAlloca:
          case Opcode::kLoad:
          case Opcode::kStore:
          case Opcode::kGep:
          case Opcode::kMemSet:
          case Opcode::kMemCpy: ++fv[52]; break;  // memory instructions
          default: break;
        }
        if (inst->is_cast()) ++fv[55];  // unary operations
      }

      if (phi_args > 5) ++fv[0];
      if (phi_args >= 1 && phi_args <= 5) ++fv[1];
      if (phi_count > 0 && phi_count <= 3) ++fv[11];
      if (phi_count > 3) ++fv[12];
      if (phi_count == 0) ++fv[13];
      fv[14] += phi_count;
      fv[40] += phi_count;
      fv[54] += phi_args;

      // Edge features, inline (terminator successor slots, duplicates
      // counted). A slot is a critical edge when its source branches more
      // than once and its target has more than one distinct predecessor —
      // the targets_to leg of ir::is_critical_edge holds trivially for a
      // live successor slot.
      if (term != nullptr) {
        const std::size_t n_succ = term->successor_count();
        fv[18] += static_cast<std::int64_t>(n_succ);
        if (n_succ >= 2) {
          for (std::size_t s = 0; s < n_succ; ++s) {
            if (has_multiple_unique_preds(term->successor(s))) ++fv[17];
          }
        }
      }
    }
  }
  return fv;
}

FeatureVector BatchFeatures::row(std::size_t module_index) const noexcept {
  FeatureVector fv{};
  for (int f = 0; f < kNumFeatures; ++f) fv[static_cast<std::size_t>(f)] = at(module_index, f);
  return fv;
}

BatchFeatures extract_features_batch(std::span<const ir::Module* const> modules,
                                     ThreadPool* pool) {
  BatchFeatures out;
  out.batch = modules.size();
  out.data.assign(static_cast<std::size_t>(kNumFeatures) * out.batch, 0);
  const auto extract_one = [&](std::size_t i) {
    const FeatureVector fv = extract_features(*modules[i]);
    // Scatter into the feature-major layout: each module writes a disjoint
    // column, so parallel extraction is race-free and order-independent.
    for (int f = 0; f < kNumFeatures; ++f) {
      out.data[static_cast<std::size_t>(f) * out.batch + i] = fv[static_cast<std::size_t>(f)];
    }
  };
  if (pool != nullptr && pool->size() > 1 && modules.size() > 1) {
    pool->parallel_for(modules.size(), extract_one);
  } else {
    for (std::size_t i = 0; i < modules.size(); ++i) extract_one(i);
  }
  return out;
}

}  // namespace autophase::features
