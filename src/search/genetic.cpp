#include <algorithm>

#include "passes/pass.hpp"
#include "search/evaluator.hpp"

namespace autophase::search {

GeneticStepper::GeneticStepper(GeneticConfig config, int sequence_length, Rng rng)
    : config_(config), length_(sequence_length), rng_(rng) {}

const std::vector<int>& GeneticStepper::tournament_select() const {
  std::size_t best = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(population_.size()) - 1));
  for (int i = 1; i < config_.tournament; ++i) {
    const std::size_t cand = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(population_.size()) - 1));
    if (fitness_[cand] < fitness_[best]) best = cand;
  }
  return population_[best];
}

std::vector<int> GeneticStepper::crossover(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> child = a;
  switch (config_.crossover_kind) {
    case 0: {  // one-point
      const auto cut = static_cast<std::size_t>(rng_.uniform_int(0, length_ - 1));
      for (std::size_t i = cut; i < child.size(); ++i) child[i] = b[i];
      break;
    }
    case 1: {  // two-point
      auto c1 = static_cast<std::size_t>(rng_.uniform_int(0, length_ - 1));
      auto c2 = static_cast<std::size_t>(rng_.uniform_int(0, length_ - 1));
      if (c1 > c2) std::swap(c1, c2);
      for (std::size_t i = c1; i <= c2; ++i) child[i] = b[i];
      break;
    }
    default: {  // uniform
      for (std::size_t i = 0; i < child.size(); ++i) {
        if (rng_.chance(0.5)) child[i] = b[i];
      }
      break;
    }
  }
  return child;
}

void GeneticStepper::mutate(std::vector<int>& genome) {
  for (int& gene : genome) {
    if (rng_.chance(config_.mutation_rate)) {
      gene = static_cast<int>(rng_.uniform_int(0, passes::kNumPasses - 1));
    }
  }
}

bool GeneticStepper::step(Evaluator& eval) {
  const std::uint64_t best_before = eval.best_cycles();
  if (!initialised_) {
    initialised_ = true;
    population_.clear();
    fitness_.clear();
    std::vector<std::vector<int>> seeds;
    seeds.reserve(static_cast<std::size_t>(config_.population));
    for (int i = 0; i < config_.population; ++i) {
      seeds.push_back(random_sequence(rng_, length_));
    }
    // Budget-capped parallel batch; a truncated tail is dropped, just as the
    // serial path would never have evaluated it.
    const auto fitness = eval.evaluate_batch(seeds);
    for (std::size_t i = 0; i < fitness.size(); ++i) {
      population_.push_back(std::move(seeds[i]));
      fitness_.push_back(fitness[i]);
    }
    return eval.best_cycles() < best_before;
  }
  if (population_.empty()) return false;

  // Elitism: keep the best individual (fitness already known — it must not
  // occupy a slot of the evaluation budget), refill the rest. Selection
  // draws on the previous generation only, so the whole brood can be bred
  // first and evaluated as one parallel batch.
  const std::size_t elite = static_cast<std::size_t>(
      std::min_element(fitness_.begin(), fitness_.end()) - fitness_.begin());
  std::vector<std::vector<int>> brood;
  brood.reserve(static_cast<std::size_t>(config_.population) - 1);
  for (int i = 1; i < config_.population; ++i) {
    std::vector<int> child = rng_.chance(config_.crossover_rate)
                                 ? crossover(tournament_select(), tournament_select())
                                 : tournament_select();
    mutate(child);
    brood.push_back(std::move(child));
  }
  const auto brood_fitness = eval.evaluate_batch(brood);
  std::vector<std::vector<int>> next{population_[elite]};
  std::vector<std::uint64_t> next_fitness{fitness_[elite]};
  for (std::size_t i = 0; i < brood_fitness.size(); ++i) {
    next.push_back(std::move(brood[i]));
    next_fitness.push_back(brood_fitness[i]);
  }
  population_ = std::move(next);
  fitness_ = std::move(next_fitness);
  return eval.best_cycles() < best_before;
}

SearchResult genetic_search(const ir::Module& program, const SearchBudget& budget,
                            const GeneticConfig& config) {
  Evaluator eval(program, budget);
  eval.evaluate({});
  GeneticStepper stepper(config, budget.sequence_length, Rng(budget.seed));
  while (!eval.exhausted()) stepper.step(eval);
  return eval.result();
}

}  // namespace autophase::search
