// Black-box phase-ordering baselines from the paper's evaluation (§6.1):
// random search, the greedy insertion algorithm of Huang et al. 2013,
// a DEAP-style genetic algorithm, particle swarm optimisation, and an
// OpenTuner-style AUC-bandit ensemble over {GA, PSO} x 3 crossover settings.
// All report the paper's "Samples / Program" metric via the shared
// EvaluationCache (cache hits are free, exactly like re-querying LegUp on an
// unchanged design).
#pragma once

#include <cstdint>
#include <vector>

#include "rl/env.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace autophase::search {

struct SearchResult {
  std::vector<int> best_sequence;  // Table-1 pass indices
  std::uint64_t best_cycles = ~0ull;
  std::size_t samples = 0;
};

struct SearchBudget {
  std::size_t max_samples = 1000;
  int sequence_length = 45;  // the paper's pass length
  std::uint64_t seed = 1;
  /// Worker pool for batched candidate evaluation; nullptr (the default)
  /// evaluates serially. Candidate generation and best-result selection are
  /// thread-count agnostic, so results are identical either way. Not owned.
  ThreadPool* pool = nullptr;
};

/// Uniform random 45-pass sequences ("random" bar of Fig. 7).
SearchResult random_search(const ir::Module& program, const SearchBudget& budget);

/// One uniformly random pass sequence (building block shared by the
/// stochastic searches and corpus-level tuning).
std::vector<int> random_sequence(Rng& rng, int length);

/// Greedy insertion (Huang et al. 2013): repeatedly insert the pass at the
/// position that maximises the immediate speedup; stop at a local optimum or
/// when the sample budget is exhausted.
SearchResult greedy_search(const ir::Module& program, const SearchBudget& budget);

struct GeneticConfig {
  int population = 20;
  double crossover_rate = 0.9;
  double mutation_rate = 0.05;
  int tournament = 3;
  /// 0 = one-point, 1 = two-point, 2 = uniform (the "crossover settings").
  int crossover_kind = 0;
};

/// DEAP-style genetic algorithm ("Genetic-DEAP" bar of Fig. 7).
SearchResult genetic_search(const ir::Module& program, const SearchBudget& budget,
                            const GeneticConfig& config = {});

struct PsoConfig {
  int particles = 16;
  double inertia = 0.72;
  double cognitive = 1.5;
  double social = 1.5;
  /// Like OpenTuner's PSO variants: fraction of dimensions crossed over with
  /// the global best each step.
  double crossover_fraction = 0.0;
};

/// Particle swarm optimisation over integer pass vectors.
SearchResult pso_search(const ir::Module& program, const SearchBudget& budget,
                        const PsoConfig& config = {});

/// OpenTuner-style meta-search: an AUC bandit chooses per round among six
/// sub-techniques (GA and PSO, each with three crossover settings) sharing
/// one result pool ("OpenTuner runs an ensemble of six algorithms", §6.1).
SearchResult opentuner_search(const ir::Module& program, const SearchBudget& budget);

}  // namespace autophase::search
