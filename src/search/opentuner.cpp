#include <cmath>
#include <functional>
#include <memory>

#include "search/evaluator.hpp"

namespace autophase::search {

namespace {

/// One arm of the AUC bandit: a sub-technique plus its reward history.
struct Arm {
  std::function<bool(Evaluator&)> step;
  std::vector<int> history;  // 1 = improved the global best
  int uses = 0;

  /// OpenTuner's AUC credit: recent improvements weigh more (area under the
  /// cumulative-improvement curve over a sliding window).
  [[nodiscard]] double auc() const {
    constexpr std::size_t kWindow = 16;
    const std::size_t n = std::min(history.size(), kWindow);
    if (n == 0) return 0.0;
    double area = 0.0;
    double weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double w = static_cast<double>(i + 1);
      area += w * history[history.size() - n + i];
      weight += w;
    }
    return area / weight;
  }
};

}  // namespace

SearchResult opentuner_search(const ir::Module& program, const SearchBudget& budget) {
  Evaluator eval(program, budget);
  eval.evaluate({});
  Rng rng(budget.seed);

  // The paper: "OpenTuner runs an ensemble of six algorithms ... particle
  // swarm optimization and GA, each with three different crossover settings".
  std::vector<std::unique_ptr<GeneticStepper>> gas;
  std::vector<std::unique_ptr<PsoStepper>> psos;
  std::vector<Arm> arms;
  for (int kind = 0; kind < 3; ++kind) {
    GeneticConfig gc;
    gc.crossover_kind = kind;
    gas.push_back(
        std::make_unique<GeneticStepper>(gc, budget.sequence_length, rng.split()));
    GeneticStepper* ga = gas.back().get();
    arms.push_back(Arm{[ga](Evaluator& e) { return ga->step(e); }, {}, 0});
  }
  const double crossover_settings[3] = {0.0, 0.1, 0.3};
  for (int kind = 0; kind < 3; ++kind) {
    PsoConfig pc;
    pc.crossover_fraction = crossover_settings[kind];
    psos.push_back(std::make_unique<PsoStepper>(pc, budget.sequence_length, rng.split()));
    PsoStepper* pso = psos.back().get();
    arms.push_back(Arm{[pso](Evaluator& e) { return pso->step(e); }, {}, 0});
  }

  int round = 0;
  while (!eval.exhausted()) {
    ++round;
    // AUC bandit: exploitation (AUC score) + UCB exploration bonus.
    std::size_t chosen = 0;
    double best_score = -1e300;
    for (std::size_t a = 0; a < arms.size(); ++a) {
      const double exploration =
          arms[a].uses == 0
              ? 1e6  // try every arm once
              : std::sqrt(2.0 * std::log(static_cast<double>(round)) / arms[a].uses);
      const double score = arms[a].auc() + exploration;
      if (score > best_score) {
        best_score = score;
        chosen = a;
      }
    }
    Arm& arm = arms[chosen];
    const bool improved = arm.step(eval);
    arm.history.push_back(improved ? 1 : 0);
    ++arm.uses;
  }
  return eval.result();
}

}  // namespace autophase::search
