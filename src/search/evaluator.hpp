// Internal helpers shared by the search baselines: budget-tracked sequence
// evaluation and incremental population steppers (used standalone and inside
// the OpenTuner-style ensemble).
#pragma once

#include <vector>

#include "search/search.hpp"

namespace autophase::search {

class Evaluator {
 public:
  Evaluator(const ir::Module& program, const SearchBudget& budget)
      : program_(&program),
        budget_(budget),
        cache_(hls::ResourceConstraints{}, interp::InterpreterOptions{}) {}

  std::uint64_t evaluate(const std::vector<int>& sequence) {
    const std::uint64_t cycles = rl::evaluate_sequence_on(*program_, sequence, cache_);
    if (cycles < best_.best_cycles) {
      best_.best_cycles = cycles;
      best_.best_sequence = sequence;
    }
    return cycles;
  }

  [[nodiscard]] bool exhausted() const { return cache_.samples() >= budget_.max_samples; }
  [[nodiscard]] const SearchBudget& budget() const noexcept { return budget_; }

  [[nodiscard]] SearchResult result() const {
    SearchResult r = best_;
    r.samples = cache_.samples();
    return r;
  }
  [[nodiscard]] std::uint64_t best_cycles() const noexcept { return best_.best_cycles; }

 private:
  const ir::Module* program_;
  SearchBudget budget_;
  rl::EvaluationCache cache_;
  SearchResult best_;
};

/// Incremental genetic algorithm (one generation per step).
class GeneticStepper {
 public:
  GeneticStepper(GeneticConfig config, int sequence_length, Rng rng);

  /// Evaluates one generation; returns true if the evaluator's global best
  /// improved during this step.
  bool step(Evaluator& eval);

 private:
  std::vector<int> crossover(const std::vector<int>& a, const std::vector<int>& b);
  void mutate(std::vector<int>& genome);
  const std::vector<int>& tournament_select() const;

  GeneticConfig config_;
  int length_;
  mutable Rng rng_;
  std::vector<std::vector<int>> population_;
  std::vector<std::uint64_t> fitness_;  // lower = better
  bool initialised_ = false;
};

/// Incremental particle swarm (one swarm update per step).
class PsoStepper {
 public:
  PsoStepper(PsoConfig config, int sequence_length, Rng rng);

  bool step(Evaluator& eval);

 private:
  PsoConfig config_;
  int length_;
  Rng rng_;
  std::vector<std::vector<double>> position_;
  std::vector<std::vector<double>> velocity_;
  std::vector<std::vector<double>> personal_best_;
  std::vector<std::uint64_t> personal_best_fitness_;
  std::vector<double> global_best_;
  std::uint64_t global_best_fitness_ = ~0ull;
  bool initialised_ = false;
};

}  // namespace autophase::search
