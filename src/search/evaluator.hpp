// Internal helpers shared by the search baselines: budget-tracked sequence
// evaluation (single and batched) and incremental population steppers (used
// standalone and inside the OpenTuner-style ensemble). Evaluation goes
// through a runtime::EvalService, so repeated candidates cost neither a
// simulator call nor a pass application, and batches fan out over the
// budget's ThreadPool.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "ir/printer.hpp"
#include "runtime/eval_service.hpp"
#include "search/search.hpp"

namespace autophase::search {

class Evaluator {
 public:
  Evaluator(const ir::Module& program, const SearchBudget& budget)
      : Evaluator(program, budget, nullptr) {}

  /// Pass a service to share cycle estimates with other consumers — its
  /// existing pool wiring is respected (rebinding a shared service's pool
  /// here would race with, and dangle under, its other users). The default
  /// builds a private service wired to the budget's pool.
  Evaluator(const ir::Module& program, const SearchBudget& budget,
            std::shared_ptr<runtime::EvalService> service)
      : program_(&program),
        budget_(budget),
        service_(service ? std::move(service)
                         : std::make_shared<runtime::EvalService>(runtime::EvalServiceConfig{
                               .pool = budget.pool})),
        program_fingerprint_(ir::module_fingerprint(program)) {}

  std::uint64_t evaluate(const std::vector<int>& sequence) {
    bool sampled = false;
    const std::uint64_t cycles =
        service_->evaluate_sequence(*program_, program_fingerprint_, sequence, &sampled);
    if (sampled) ++samples_;
    note(cycles, sequence);
    return cycles;
  }

  /// Evaluates candidates in parallel, capped at the remaining budget under
  /// the worst-case assumption that every candidate is a fresh simulator
  /// call (cache hits keep the cap conservative, never over budget). Returns
  /// the cycles of the evaluated prefix — possibly fewer than requested; the
  /// unevaluated tail should be discarded, exactly as the serial path would
  /// never have generated it. The global best is updated in candidate order
  /// (first-wins on ties), identical to serial evaluation.
  std::vector<std::uint64_t> evaluate_batch(std::span<const std::vector<int>> candidates) {
    const std::size_t n = std::min(candidates.size(), budget_remaining());
    auto batch = service_->evaluate_batch(*program_, candidates.subspan(0, n));
    samples_ += batch.new_samples;
    for (std::size_t i = 0; i < n; ++i) note(batch.cycles[i], candidates[i]);
    return std::move(batch.cycles);
  }

  [[nodiscard]] bool exhausted() const { return samples_ >= budget_.max_samples; }
  [[nodiscard]] std::size_t budget_remaining() const {
    return samples_ >= budget_.max_samples ? 0 : budget_.max_samples - samples_;
  }
  [[nodiscard]] const SearchBudget& budget() const noexcept { return budget_; }

  [[nodiscard]] SearchResult result() const {
    SearchResult r = best_;
    r.samples = samples_;
    return r;
  }
  [[nodiscard]] std::uint64_t best_cycles() const noexcept { return best_.best_cycles; }
  [[nodiscard]] runtime::EvalService& service() noexcept { return *service_; }

 private:
  void note(std::uint64_t cycles, const std::vector<int>& sequence) {
    if (cycles < best_.best_cycles) {
      best_.best_cycles = cycles;
      best_.best_sequence = sequence;
    }
  }

  const ir::Module* program_;
  SearchBudget budget_;
  std::shared_ptr<runtime::EvalService> service_;
  std::uint64_t program_fingerprint_;
  std::size_t samples_ = 0;  // simulator calls attributed to this search
  SearchResult best_;
};

/// Incremental genetic algorithm (one generation per step; the generation's
/// offspring are evaluated as one parallel batch).
class GeneticStepper {
 public:
  GeneticStepper(GeneticConfig config, int sequence_length, Rng rng);

  /// Evaluates one generation; returns true if the evaluator's global best
  /// improved during this step.
  bool step(Evaluator& eval);

 private:
  std::vector<int> crossover(const std::vector<int>& a, const std::vector<int>& b);
  void mutate(std::vector<int>& genome);
  const std::vector<int>& tournament_select() const;

  GeneticConfig config_;
  int length_;
  mutable Rng rng_;
  std::vector<std::vector<int>> population_;
  std::vector<std::uint64_t> fitness_;  // lower = better
  bool initialised_ = false;
};

/// Incremental particle swarm (one swarm update per step). Synchronous PSO:
/// every particle moves against the iteration-start global best, then the
/// whole swarm is evaluated as one batch — which is what makes the update
/// independent of evaluation order and thread count.
class PsoStepper {
 public:
  PsoStepper(PsoConfig config, int sequence_length, Rng rng);

  bool step(Evaluator& eval);

 private:
  PsoConfig config_;
  int length_;
  Rng rng_;
  std::vector<std::vector<double>> position_;
  std::vector<std::vector<double>> velocity_;
  std::vector<std::vector<double>> personal_best_;
  std::vector<std::uint64_t> personal_best_fitness_;
  std::vector<double> global_best_;
  std::uint64_t global_best_fitness_ = ~0ull;
  bool initialised_ = false;
};

}  // namespace autophase::search
