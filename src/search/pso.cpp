#include <algorithm>
#include <cmath>

#include "passes/pass.hpp"
#include "search/evaluator.hpp"

namespace autophase::search {

namespace {

std::vector<int> discretise(const std::vector<double>& position) {
  std::vector<int> seq(position.size());
  for (std::size_t i = 0; i < position.size(); ++i) {
    seq[i] = std::clamp(static_cast<int>(position[i]), 0, passes::kNumPasses - 1);
  }
  return seq;
}

}  // namespace

PsoStepper::PsoStepper(PsoConfig config, int sequence_length, Rng rng)
    : config_(config), length_(sequence_length), rng_(rng) {}

bool PsoStepper::step(Evaluator& eval) {
  const std::uint64_t best_before = eval.best_cycles();
  const double hi = static_cast<double>(passes::kNumPasses) - 1e-3;

  if (!initialised_) {
    initialised_ = true;
    position_.resize(static_cast<std::size_t>(config_.particles));
    velocity_.resize(static_cast<std::size_t>(config_.particles));
    personal_best_.resize(static_cast<std::size_t>(config_.particles));
    personal_best_fitness_.assign(static_cast<std::size_t>(config_.particles), ~0ull);
    for (int p = 0; p < config_.particles && !eval.exhausted(); ++p) {
      auto& x = position_[static_cast<std::size_t>(p)];
      auto& v = velocity_[static_cast<std::size_t>(p)];
      x.resize(static_cast<std::size_t>(length_));
      v.resize(static_cast<std::size_t>(length_));
      for (int i = 0; i < length_; ++i) {
        x[static_cast<std::size_t>(i)] = rng_.uniform(0.0, hi);
        v[static_cast<std::size_t>(i)] = rng_.uniform(-3.0, 3.0);
      }
      const std::uint64_t fit = eval.evaluate(discretise(x));
      personal_best_[static_cast<std::size_t>(p)] = x;
      personal_best_fitness_[static_cast<std::size_t>(p)] = fit;
      if (fit < global_best_fitness_) {
        global_best_fitness_ = fit;
        global_best_ = x;
      }
    }
    return eval.best_cycles() < best_before;
  }
  if (position_.empty() || global_best_.empty()) return false;

  for (std::size_t p = 0; p < position_.size() && !eval.exhausted(); ++p) {
    auto& x = position_[p];
    auto& v = velocity_[p];
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double r1 = rng_.uniform();
      const double r2 = rng_.uniform();
      v[i] = config_.inertia * v[i] +
             config_.cognitive * r1 * (personal_best_[p][i] - x[i]) +
             config_.social * r2 * (global_best_[i] - x[i]);
      v[i] = std::clamp(v[i], -8.0, 8.0);
      x[i] = std::clamp(x[i] + v[i], 0.0, hi);
      // OpenTuner-flavoured crossover setting: teleport a fraction of the
      // dimensions straight onto the global best.
      if (config_.crossover_fraction > 0.0 && rng_.chance(config_.crossover_fraction)) {
        x[i] = global_best_[i];
      }
    }
    const std::uint64_t fit = eval.evaluate(discretise(x));
    if (fit < personal_best_fitness_[p]) {
      personal_best_fitness_[p] = fit;
      personal_best_[p] = x;
    }
    if (fit < global_best_fitness_) {
      global_best_fitness_ = fit;
      global_best_ = x;
    }
  }
  return eval.best_cycles() < best_before;
}

SearchResult pso_search(const ir::Module& program, const SearchBudget& budget,
                        const PsoConfig& config) {
  Evaluator eval(program, budget);
  eval.evaluate({});
  PsoStepper stepper(config, budget.sequence_length, Rng(budget.seed));
  while (!eval.exhausted()) stepper.step(eval);
  return eval.result();
}

}  // namespace autophase::search
