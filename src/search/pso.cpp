#include <algorithm>
#include <cmath>

#include "passes/pass.hpp"
#include "search/evaluator.hpp"

namespace autophase::search {

namespace {

std::vector<int> discretise(const std::vector<double>& position) {
  std::vector<int> seq(position.size());
  for (std::size_t i = 0; i < position.size(); ++i) {
    seq[i] = std::clamp(static_cast<int>(position[i]), 0, passes::kNumPasses - 1);
  }
  return seq;
}

}  // namespace

PsoStepper::PsoStepper(PsoConfig config, int sequence_length, Rng rng)
    : config_(config), length_(sequence_length), rng_(rng) {}

bool PsoStepper::step(Evaluator& eval) {
  const std::uint64_t best_before = eval.best_cycles();
  const double hi = static_cast<double>(passes::kNumPasses) - 1e-3;

  if (!initialised_) {
    initialised_ = true;
    position_.resize(static_cast<std::size_t>(config_.particles));
    velocity_.resize(static_cast<std::size_t>(config_.particles));
    personal_best_.resize(static_cast<std::size_t>(config_.particles));
    personal_best_fitness_.assign(static_cast<std::size_t>(config_.particles), ~0ull);
    std::vector<std::vector<int>> candidates;
    candidates.reserve(position_.size());
    for (int p = 0; p < config_.particles; ++p) {
      auto& x = position_[static_cast<std::size_t>(p)];
      auto& v = velocity_[static_cast<std::size_t>(p)];
      x.resize(static_cast<std::size_t>(length_));
      v.resize(static_cast<std::size_t>(length_));
      for (int i = 0; i < length_; ++i) {
        x[static_cast<std::size_t>(i)] = rng_.uniform(0.0, hi);
        v[static_cast<std::size_t>(i)] = rng_.uniform(-3.0, 3.0);
      }
      candidates.push_back(discretise(x));
    }
    const auto fitness = eval.evaluate_batch(candidates);
    // A budget-truncated batch leaves trailing particles unevaluated; drop
    // them entirely so later movement steps never touch an empty
    // personal_best_ entry.
    position_.resize(fitness.size());
    velocity_.resize(fitness.size());
    personal_best_.resize(fitness.size());
    personal_best_fitness_.resize(fitness.size());
    for (std::size_t p = 0; p < fitness.size(); ++p) {
      personal_best_[p] = position_[p];
      personal_best_fitness_[p] = fitness[p];
      if (fitness[p] < global_best_fitness_) {
        global_best_fitness_ = fitness[p];
        global_best_ = position_[p];
      }
    }
    return eval.best_cycles() < best_before;
  }
  if (position_.empty() || global_best_.empty()) return false;

  // Synchronous swarm update: every particle moves against the global best
  // as of the start of this iteration, then the whole swarm is evaluated as
  // one parallel batch and the bests are folded in by particle index — the
  // trajectory is therefore independent of evaluation order / thread count.
  const std::vector<double> gbest = global_best_;
  std::vector<std::vector<int>> candidates;
  candidates.reserve(position_.size());
  for (std::size_t p = 0; p < position_.size(); ++p) {
    auto& x = position_[p];
    auto& v = velocity_[p];
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double r1 = rng_.uniform();
      const double r2 = rng_.uniform();
      v[i] = config_.inertia * v[i] +
             config_.cognitive * r1 * (personal_best_[p][i] - x[i]) +
             config_.social * r2 * (gbest[i] - x[i]);
      v[i] = std::clamp(v[i], -8.0, 8.0);
      x[i] = std::clamp(x[i] + v[i], 0.0, hi);
      // OpenTuner-flavoured crossover setting: teleport a fraction of the
      // dimensions straight onto the global best.
      if (config_.crossover_fraction > 0.0 && rng_.chance(config_.crossover_fraction)) {
        x[i] = gbest[i];
      }
    }
    candidates.push_back(discretise(x));
  }
  const auto fitness = eval.evaluate_batch(candidates);
  for (std::size_t p = 0; p < fitness.size(); ++p) {
    if (fitness[p] < personal_best_fitness_[p]) {
      personal_best_fitness_[p] = fitness[p];
      personal_best_[p] = position_[p];
    }
    if (fitness[p] < global_best_fitness_) {
      global_best_fitness_ = fitness[p];
      global_best_ = position_[p];
    }
  }
  return eval.best_cycles() < best_before;
}

SearchResult pso_search(const ir::Module& program, const SearchBudget& budget,
                        const PsoConfig& config) {
  Evaluator eval(program, budget);
  eval.evaluate({});
  PsoStepper stepper(config, budget.sequence_length, Rng(budget.seed));
  while (!eval.exhausted()) stepper.step(eval);
  return eval.result();
}

}  // namespace autophase::search
