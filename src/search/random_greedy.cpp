#include "passes/pass.hpp"
#include "search/evaluator.hpp"

namespace autophase::search {

std::vector<int> random_sequence(Rng& rng, int length) {
  std::vector<int> seq(static_cast<std::size_t>(length));
  for (int& p : seq) p = static_cast<int>(rng.uniform_int(0, passes::kNumPasses - 1));
  return seq;
}

SearchResult random_search(const ir::Module& program, const SearchBudget& budget) {
  Evaluator eval(program, budget);
  Rng rng(budget.seed);
  eval.evaluate({});  // -O0 reference
  while (!eval.exhausted()) {
    eval.evaluate(random_sequence(rng, budget.sequence_length));
  }
  return eval.result();
}

SearchResult greedy_search(const ir::Module& program, const SearchBudget& budget) {
  Evaluator eval(program, budget);
  std::vector<int> current;
  std::uint64_t current_cycles = eval.evaluate(current);

  // Insert the best (pass, position) pair until nothing improves. This is
  // the algorithm the paper attributes to Huang et al. 2013 and shows to be
  // easily trapped: each insertion is judged by its *immediate* speedup, so
  // enabling passes with zero standalone gain are never chosen.
  while (static_cast<int>(current.size()) < budget.sequence_length && !eval.exhausted()) {
    std::uint64_t best_cycles = current_cycles;
    std::vector<int> best_candidate;
    for (int pass = 0; pass < passes::kNumPasses && !eval.exhausted(); ++pass) {
      for (std::size_t pos = 0; pos <= current.size() && !eval.exhausted(); ++pos) {
        std::vector<int> candidate = current;
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos), pass);
        const std::uint64_t cycles = eval.evaluate(candidate);
        if (cycles < best_cycles) {
          best_cycles = cycles;
          best_candidate = candidate;
        }
      }
    }
    if (best_candidate.empty()) break;  // local optimum
    current = std::move(best_candidate);
    current_cycles = best_cycles;
  }
  return eval.result();
}

}  // namespace autophase::search
