#include "passes/pass.hpp"
#include "search/evaluator.hpp"

namespace autophase::search {

std::vector<int> random_sequence(Rng& rng, int length) {
  std::vector<int> seq(static_cast<std::size_t>(length));
  for (int& p : seq) p = static_cast<int>(rng.uniform_int(0, passes::kNumPasses - 1));
  return seq;
}

namespace {

/// Candidates per parallel batch. The candidate stream itself is generated
/// serially from the budget's RNG, so chunking only affects how many
/// in-flight evaluations the pool can overlap, never which candidates run.
constexpr std::size_t kBatchChunk = 32;

}  // namespace

SearchResult random_search(const ir::Module& program, const SearchBudget& budget) {
  Evaluator eval(program, budget);
  Rng rng(budget.seed);
  eval.evaluate({});  // -O0 reference
  while (!eval.exhausted()) {
    const std::size_t chunk = std::min(kBatchChunk, eval.budget_remaining());
    std::vector<std::vector<int>> candidates;
    candidates.reserve(chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      candidates.push_back(random_sequence(rng, budget.sequence_length));
    }
    eval.evaluate_batch(candidates);
  }
  return eval.result();
}

SearchResult greedy_search(const ir::Module& program, const SearchBudget& budget) {
  Evaluator eval(program, budget);
  std::vector<int> current;
  std::uint64_t current_cycles = eval.evaluate(current);

  // Insert the best (pass, position) pair until nothing improves. This is
  // the algorithm the paper attributes to Huang et al. 2013 and shows to be
  // easily trapped: each insertion is judged by its *immediate* speedup, so
  // enabling passes with zero standalone gain are never chosen.
  while (static_cast<int>(current.size()) < budget.sequence_length && !eval.exhausted()) {
    // All (pass, position) insertions of a round are independent: enumerate
    // them up front and evaluate chunk by chunk in parallel. The winner is
    // chosen in enumeration order (first-wins on ties), matching the serial
    // scan.
    std::vector<std::vector<int>> candidates;
    candidates.reserve(static_cast<std::size_t>(passes::kNumPasses) * (current.size() + 1));
    for (int pass = 0; pass < passes::kNumPasses; ++pass) {
      for (std::size_t pos = 0; pos <= current.size(); ++pos) {
        std::vector<int> candidate = current;
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos), pass);
        candidates.push_back(std::move(candidate));
      }
    }
    std::uint64_t best_cycles = current_cycles;
    std::vector<int> best_candidate;
    for (std::size_t offset = 0; offset < candidates.size() && !eval.exhausted();) {
      const std::size_t chunk = std::min(kBatchChunk, candidates.size() - offset);
      const auto cycles = eval.evaluate_batch(
          std::span<const std::vector<int>>(candidates).subspan(offset, chunk));
      for (std::size_t i = 0; i < cycles.size(); ++i) {
        if (cycles[i] < best_cycles) {
          best_cycles = cycles[i];
          best_candidate = candidates[offset + i];
        }
      }
      if (cycles.empty()) break;
      // Advance by what was actually evaluated: the budget cap may truncate
      // a chunk while cache hits keep the budget open, and those skipped
      // candidates must be retried, not silently dropped.
      offset += cycles.size();
    }
    if (best_candidate.empty()) break;  // local optimum
    current = std::move(best_candidate);
    current_cycles = best_cycles;
  }
  return eval.result();
}

}  // namespace autophase::search
