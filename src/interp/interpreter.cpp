#include "interp/interpreter.hpp"

#include <cassert>
#include <cstring>
#include <vector>

#include "support/hash.hpp"
#include "support/str.hpp"

namespace autophase::interp {

namespace {

using ir::BasicBlock;
using ir::ConstantInt;
using ir::Function;
using ir::ICmpPred;
using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;

inline std::int64_t sext64(std::uint64_t v, int bits) noexcept {
  if (bits >= 64) return static_cast<std::int64_t>(v);
  const int s = 64 - bits;
  return static_cast<std::int64_t>(v << s) >> s;
}

inline std::uint64_t zmask(std::int64_t v, int bits) noexcept {
  if (bits >= 64) return static_cast<std::uint64_t>(v);
  return static_cast<std::uint64_t>(v) & ((1ULL << bits) - 1);
}

enum class OperandKind : std::uint8_t { kSlot, kImm };

struct OperandRef {
  OperandKind kind = OperandKind::kImm;
  int slot = -1;
  std::int64_t imm = 0;
};

struct DecodedPhi {
  int dest_slot = -1;
  std::vector<std::pair<int, OperandRef>> incoming;  // (pred block index, value)
};

struct DecodedInst {
  Opcode op = Opcode::kUnreachable;
  ICmpPred pred = ICmpPred::kEq;
  int bits = 64;       // result width for masking
  int src_bits = 64;   // source width (casts)
  int dest_slot = -1;  // -1 for void results
  std::uint32_t elem_size = 1;
  std::size_t alloca_count = 0;
  int callee = -1;  // function index
  int succ0 = -1;
  int succ1 = -1;
  std::vector<OperandRef> ops;
  std::vector<std::pair<std::int64_t, int>> cases;  // switch
  const Instruction* src = nullptr;
};

struct DecodedBlock {
  const BasicBlock* src = nullptr;
  std::vector<DecodedPhi> phis;
  std::vector<DecodedInst> insts;
};

struct DecodedFunction {
  const Function* src = nullptr;
  std::vector<DecodedBlock> blocks;
  int slot_count = 0;
  int arg_count = 0;
};

struct Frame {
  int func = -1;
  int block = 0;
  int prev_block = -1;
  std::size_t ip = 0;
  int ret_slot = -1;           // slot in the caller frame
  std::size_t stack_watermark = 0;
  std::vector<std::int64_t> slots;
};

}  // namespace

struct Interpreter::Impl {
  const ir::Module* module;
  InterpreterOptions options;
  std::vector<DecodedFunction> functions;
  std::unordered_map<const Function*, int> function_index;
  std::unordered_map<const ir::GlobalVariable*, std::uint64_t> global_base;
  std::size_t globals_end = 8;  // address 0..7 reserved (null page)
  int main_index = -1;

  explicit Impl(const ir::Module& m, InterpreterOptions opts) : module(&m), options(opts) {
    layout_globals();
    decode_module();
  }

  struct GlobalRegion {
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    const ir::GlobalVariable* global = nullptr;
    bool dirty = false;
  };
  std::vector<GlobalRegion> regions;  // sorted by base

  void layout_globals() {
    std::size_t cursor = 8;
    for (std::size_t i = 0; i < module->global_count(); ++i) {
      const ir::GlobalVariable* g = module->global(i);
      cursor = (cursor + 7) & ~std::size_t{7};
      global_base[g] = cursor;
      regions.push_back({cursor, g->size_in_bytes(), g, false});
      cursor += g->size_in_bytes();
    }
    globals_end = (cursor + 7) & ~std::size_t{7};
  }

  /// Marks the global containing [addr, addr+size) dirty, if any.
  void mark_written(std::uint64_t addr, std::uint64_t size) noexcept {
    if (addr >= globals_end || regions.empty()) return;
    // Binary search for the region containing addr.
    std::size_t lo = 0;
    std::size_t hi = regions.size();
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (regions[mid].base <= addr) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    GlobalRegion& r = regions[lo];
    if (addr >= r.base && addr + size <= r.base + r.size) r.dirty = true;
  }

  void decode_module() {
    const auto funcs = module->functions();
    for (std::size_t i = 0; i < funcs.size(); ++i) {
      function_index[funcs[i]] = static_cast<int>(i);
      if (funcs[i]->name() == "main") main_index = static_cast<int>(i);
    }
    functions.resize(funcs.size());
    for (std::size_t i = 0; i < funcs.size(); ++i) decode_function(*funcs[i], functions[i]);
  }

  void decode_function(const Function& f, DecodedFunction& out) {
    out.src = &f;
    out.arg_count = static_cast<int>(f.arg_count());
    std::unordered_map<const Value*, int> slot;
    int next_slot = 0;
    for (std::size_t a = 0; a < f.arg_count(); ++a) slot[f.arg(a)] = next_slot++;

    std::unordered_map<const BasicBlock*, int> block_index;
    const auto blocks = const_cast<Function&>(f).blocks();
    for (std::size_t b = 0; b < blocks.size(); ++b) block_index[blocks[b]] = static_cast<int>(b);
    for (BasicBlock* bb : blocks) {
      for (Instruction* inst : bb->instructions()) {
        if (!inst->type()->is_void()) slot[inst] = next_slot++;
      }
    }
    out.slot_count = next_slot;

    auto make_ref = [&](Value* v) -> OperandRef {
      OperandRef r;
      if (const ConstantInt* ci = ir::as_constant_int(v)) {
        r.kind = OperandKind::kImm;
        r.imm = ci->value();
      } else if (v->value_kind() == ir::ValueKind::kUndef) {
        r.kind = OperandKind::kImm;
        r.imm = 0;
      } else if (const ir::GlobalVariable* g = ir::as_global(v)) {
        r.kind = OperandKind::kImm;
        r.imm = static_cast<std::int64_t>(global_base.at(g));
      } else {
        r.kind = OperandKind::kSlot;
        r.slot = slot.at(v);
      }
      return r;
    };

    out.blocks.resize(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      BasicBlock* bb = blocks[b];
      DecodedBlock& dblock = out.blocks[b];
      dblock.src = bb;
      for (Instruction* inst : bb->instructions()) {
        if (inst->is_phi()) {
          DecodedPhi phi;
          phi.dest_slot = slot.at(inst);
          for (std::size_t i = 0; i < inst->incoming_count(); ++i) {
            phi.incoming.emplace_back(block_index.at(inst->incoming_block(i)),
                                      make_ref(inst->incoming_value(i)));
          }
          dblock.phis.push_back(std::move(phi));
          continue;
        }
        DecodedInst d;
        d.op = inst->opcode();
        d.src = inst;
        if (!inst->type()->is_void()) {
          d.dest_slot = slot.at(inst);
          if (inst->type()->is_int()) d.bits = inst->type()->bits();
        }
        for (Value* op : inst->operands()) d.ops.push_back(make_ref(op));
        switch (inst->opcode()) {
          case Opcode::kICmp: d.pred = inst->icmp_pred(); break;
          case Opcode::kZExt:
          case Opcode::kSExt:
          case Opcode::kTrunc:
            d.src_bits = inst->operand(0)->type()->is_int() ? inst->operand(0)->type()->bits() : 64;
            break;
          case Opcode::kAlloca:
            d.elem_size = static_cast<std::uint32_t>(inst->allocated_type()->size_in_bytes());
            d.alloca_count = inst->alloca_count();
            break;
          case Opcode::kLoad:
            d.elem_size = static_cast<std::uint32_t>(inst->type()->size_in_bytes());
            break;
          case Opcode::kStore:
            d.elem_size = static_cast<std::uint32_t>(inst->operand(0)->type()->size_in_bytes());
            break;
          case Opcode::kGep:
            d.elem_size =
                static_cast<std::uint32_t>(inst->type()->pointee()->size_in_bytes());
            break;
          case Opcode::kMemSet:
            d.elem_size =
                static_cast<std::uint32_t>(inst->operand(0)->type()->pointee()->size_in_bytes());
            break;
          case Opcode::kMemCpy:
            d.elem_size =
                static_cast<std::uint32_t>(inst->operand(0)->type()->pointee()->size_in_bytes());
            break;
          case Opcode::kCall: d.callee = function_index.at(inst->callee()); break;
          case Opcode::kBr: d.succ0 = block_index.at(inst->successor(0)); break;
          case Opcode::kCondBr:
            d.succ0 = block_index.at(inst->successor(0));
            d.succ1 = block_index.at(inst->successor(1));
            break;
          case Opcode::kSwitch: {
            d.succ0 = block_index.at(inst->successor(0));  // default
            for (std::size_t c = 0; c < inst->switch_case_count(); ++c) {
              const auto* cv = ir::as_constant_int(inst->operand(1 + c));
              d.cases.emplace_back(cv->value(), block_index.at(inst->successor(1 + c)));
            }
            break;
          }
          default: break;
        }
        dblock.insts.push_back(std::move(d));
      }
    }
  }

  // ---- Execution ----

  std::vector<std::uint8_t> memory;
  std::size_t stack_ptr = 0;
  std::uint64_t executed = 0;
  Profile profile;
  std::vector<std::int64_t> phi_buffer;

  [[nodiscard]] bool mem_ok(std::uint64_t addr, std::uint64_t size) const noexcept {
    return addr >= 8 && size <= memory.size() && addr <= memory.size() - size;
  }

  std::int64_t mem_read(std::uint64_t addr, std::uint32_t size, int bits) const noexcept {
    std::uint64_t raw = 0;
    std::memcpy(&raw, memory.data() + addr, size);  // little-endian host assumed
    return sext64(raw, bits);
  }

  void mem_write(std::uint64_t addr, std::uint32_t size, std::int64_t value) noexcept {
    const auto raw = static_cast<std::uint64_t>(value);
    std::memcpy(memory.data() + addr, &raw, size);
  }

  static std::int64_t eval_binary(Opcode op, std::int64_t a, std::int64_t b, int bits) noexcept {
    const std::uint64_t ua = static_cast<std::uint64_t>(a);
    const std::uint64_t ub = static_cast<std::uint64_t>(b);
    const std::uint64_t za = zmask(a, bits);
    const std::uint64_t zb = zmask(b, bits);
    const std::uint64_t sh = bits > 0 ? zb % static_cast<std::uint64_t>(bits) : 0;
    switch (op) {
      case Opcode::kAdd: return sext64(ua + ub, bits);
      case Opcode::kSub: return sext64(ua - ub, bits);
      case Opcode::kMul: return sext64(ua * ub, bits);
      case Opcode::kSDiv: {
        if (b == 0) return 0;
        if (b == -1) return sext64(static_cast<std::uint64_t>(-a), bits);  // min/-1 wraps
        return sext64(static_cast<std::uint64_t>(a / b), bits);
      }
      case Opcode::kUDiv: return zb == 0 ? 0 : sext64(za / zb, bits);
      case Opcode::kSRem: {
        if (b == 0 || b == -1) return 0;
        return sext64(static_cast<std::uint64_t>(a % b), bits);
      }
      case Opcode::kURem: return zb == 0 ? 0 : sext64(za % zb, bits);
      case Opcode::kAnd: return a & b;
      case Opcode::kOr: return a | b;
      case Opcode::kXor: return a ^ b;
      case Opcode::kShl: return sext64(za << sh, bits);
      case Opcode::kLShr: return sext64(za >> sh, bits);
      case Opcode::kAShr: return sext64(static_cast<std::uint64_t>(a >> sh), bits);
      default: return 0;
    }
  }

  static bool eval_icmp(ICmpPred pred, std::int64_t a, std::int64_t b, int bits) noexcept {
    const std::uint64_t za = zmask(a, bits);
    const std::uint64_t zb = zmask(b, bits);
    switch (pred) {
      case ICmpPred::kEq: return a == b;
      case ICmpPred::kNe: return a != b;
      case ICmpPred::kSlt: return a < b;
      case ICmpPred::kSle: return a <= b;
      case ICmpPred::kSgt: return a > b;
      case ICmpPred::kSge: return a >= b;
      case ICmpPred::kUlt: return za < zb;
      case ICmpPred::kUle: return za <= zb;
      case ICmpPred::kUgt: return za > zb;
      case ICmpPred::kUge: return za >= zb;
    }
    return false;
  }

  Result<ExecutionResult> run() {
    if (main_index < 0) return Status::error("interpreter: module has no 'main' function");
    // Reset state.
    memory.assign(options.memory_bytes, 0);
    for (std::size_t i = 0; i < module->global_count(); ++i) {
      const ir::GlobalVariable* g = module->global(i);
      const auto& init = g->init();
      const std::uint64_t base = global_base.at(g);
      const std::uint32_t esz = static_cast<std::uint32_t>(g->element_type()->size_in_bytes());
      for (std::size_t e = 0; e < init.size() && e < g->element_count(); ++e) {
        mem_write(base + e * esz, esz, init[e]);
      }
    }
    stack_ptr = globals_end;
    executed = 0;
    profile = Profile{};
    for (GlobalRegion& r : regions) r.dirty = false;

    std::vector<Frame> frames;
    frames.reserve(64);
    {
      Frame main_frame;
      main_frame.func = main_index;
      main_frame.stack_watermark = stack_ptr;
      main_frame.slots.assign(static_cast<std::size_t>(functions[main_index].slot_count), 0);
      frames.push_back(std::move(main_frame));
    }
    if (functions[main_index].arg_count != 0) {
      return Status::error("interpreter: 'main' must take no arguments");
    }
    enter_block(frames.back(), 0);

    std::int64_t final_return = 0;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      DecodedFunction& fn = functions[static_cast<std::size_t>(fr.func)];
      DecodedBlock& blk = fn.blocks[static_cast<std::size_t>(fr.block)];
      if (fr.ip >= blk.insts.size()) {
        return Status::error("interpreter: fell off the end of a block");
      }
      DecodedInst& d = blk.insts[fr.ip];
      if (++executed > options.max_instructions) {
        return Status::error("interpreter: instruction budget exceeded");
      }

      auto value_of = [&fr](const OperandRef& r) -> std::int64_t {
        return r.kind == OperandKind::kImm ? r.imm
                                           : fr.slots[static_cast<std::size_t>(r.slot)];
      };

      switch (d.op) {
        case Opcode::kICmp:
          fr.slots[static_cast<std::size_t>(d.dest_slot)] =
              eval_icmp(d.pred, value_of(d.ops[0]), value_of(d.ops[1]),
                        d.src->operand(0)->type()->is_int() ? d.src->operand(0)->type()->bits()
                                                            : 64)
                  ? 1
                  : 0;
          ++fr.ip;
          break;
        case Opcode::kZExt:
          fr.slots[static_cast<std::size_t>(d.dest_slot)] =
              static_cast<std::int64_t>(zmask(value_of(d.ops[0]), d.src_bits));
          ++fr.ip;
          break;
        case Opcode::kSExt:
          // Slots already hold sign-extended values at source width.
          fr.slots[static_cast<std::size_t>(d.dest_slot)] = value_of(d.ops[0]);
          ++fr.ip;
          break;
        case Opcode::kTrunc:
          fr.slots[static_cast<std::size_t>(d.dest_slot)] =
              sext64(static_cast<std::uint64_t>(value_of(d.ops[0])), d.bits);
          ++fr.ip;
          break;
        case Opcode::kBitCast:
          fr.slots[static_cast<std::size_t>(d.dest_slot)] = value_of(d.ops[0]);
          ++fr.ip;
          break;
        case Opcode::kSelect:
          fr.slots[static_cast<std::size_t>(d.dest_slot)] =
              value_of(d.ops[0]) != 0 ? value_of(d.ops[1]) : value_of(d.ops[2]);
          ++fr.ip;
          break;
        case Opcode::kAlloca: {
          std::size_t sp = (stack_ptr + 7) & ~std::size_t{7};
          const std::size_t bytes = d.alloca_count * d.elem_size;
          if (sp + bytes > memory.size()) return Status::error("interpreter: stack overflow");
          fr.slots[static_cast<std::size_t>(d.dest_slot)] = static_cast<std::int64_t>(sp);
          // Arena already zeroed at run start; freed regions re-zeroed on pop.
          stack_ptr = sp + bytes;
          ++fr.ip;
          break;
        }
        case Opcode::kLoad: {
          const auto addr = static_cast<std::uint64_t>(value_of(d.ops[0]));
          if (!mem_ok(addr, d.elem_size)) {
            return Status::error(strf("interpreter: out-of-bounds load at %llu",
                                      static_cast<unsigned long long>(addr)));
          }
          fr.slots[static_cast<std::size_t>(d.dest_slot)] = mem_read(addr, d.elem_size, d.bits);
          ++fr.ip;
          break;
        }
        case Opcode::kStore: {
          const auto addr = static_cast<std::uint64_t>(value_of(d.ops[1]));
          if (!mem_ok(addr, d.elem_size)) {
            return Status::error(strf("interpreter: out-of-bounds store at %llu",
                                      static_cast<unsigned long long>(addr)));
          }
          mem_write(addr, d.elem_size, value_of(d.ops[0]));
          mark_written(addr, d.elem_size);
          ++fr.ip;
          break;
        }
        case Opcode::kGep:
          fr.slots[static_cast<std::size_t>(d.dest_slot)] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(value_of(d.ops[0])) +
              static_cast<std::uint64_t>(value_of(d.ops[1])) * d.elem_size);
          ++fr.ip;
          break;
        case Opcode::kMemSet: {
          const auto addr = static_cast<std::uint64_t>(value_of(d.ops[0]));
          const std::int64_t count_signed = value_of(d.ops[2]);
          const std::uint64_t count =
              count_signed <= 0 ? 0 : static_cast<std::uint64_t>(count_signed);
          if (count > 0 && !mem_ok(addr, count * d.elem_size)) {
            return Status::error("interpreter: out-of-bounds memset");
          }
          const std::int64_t v = value_of(d.ops[1]);
          for (std::uint64_t i = 0; i < count; ++i) {
            mem_write(addr + i * d.elem_size, d.elem_size, v);
          }
          if (count > 0) mark_written(addr, count * d.elem_size);
          profile.mem_intrinsic_elems[d.src] += count;
          executed += count;  // budget scales with work
          ++fr.ip;
          break;
        }
        case Opcode::kMemCpy: {
          const auto dst = static_cast<std::uint64_t>(value_of(d.ops[0]));
          const auto src = static_cast<std::uint64_t>(value_of(d.ops[1]));
          const std::int64_t count_signed = value_of(d.ops[2]);
          const std::uint64_t count =
              count_signed <= 0 ? 0 : static_cast<std::uint64_t>(count_signed);
          if (count > 0 &&
              (!mem_ok(dst, count * d.elem_size) || !mem_ok(src, count * d.elem_size))) {
            return Status::error("interpreter: out-of-bounds memcpy");
          }
          std::memmove(memory.data() + dst, memory.data() + src, count * d.elem_size);
          if (count > 0) mark_written(dst, count * d.elem_size);
          profile.mem_intrinsic_elems[d.src] += count;
          executed += count;
          ++fr.ip;
          break;
        }
        case Opcode::kCall: {
          if (frames.size() >= options.max_call_depth) {
            return Status::error("interpreter: call depth limit exceeded");
          }
          ++profile.dynamic_calls;
          Frame callee_frame;
          callee_frame.func = d.callee;
          callee_frame.ret_slot = d.dest_slot;
          callee_frame.stack_watermark = stack_ptr;
          DecodedFunction& callee_fn = functions[static_cast<std::size_t>(d.callee)];
          callee_frame.slots.assign(static_cast<std::size_t>(callee_fn.slot_count), 0);
          for (std::size_t a = 0; a < d.ops.size(); ++a) callee_frame.slots[a] = value_of(d.ops[a]);
          ++fr.ip;  // resume after the call upon return
          frames.push_back(std::move(callee_frame));
          enter_block(frames.back(), 0);
          break;
        }
        case Opcode::kBr:
          jump(fr, d.succ0);
          break;
        case Opcode::kCondBr:
          jump(fr, value_of(d.ops[0]) != 0 ? d.succ0 : d.succ1);
          break;
        case Opcode::kSwitch: {
          const std::int64_t v = value_of(d.ops[0]);
          int target = d.succ0;
          for (const auto& [cv, bidx] : d.cases) {
            if (cv == v) {
              target = bidx;
              break;
            }
          }
          jump(fr, target);
          break;
        }
        case Opcode::kRet: {
          const std::int64_t rv = d.ops.empty() ? 0 : value_of(d.ops[0]);
          // Re-zero the frame's stack region so later allocas observe
          // deterministic zeroed memory.
          if (stack_ptr > fr.stack_watermark) {
            std::memset(memory.data() + fr.stack_watermark, 0, stack_ptr - fr.stack_watermark);
          }
          stack_ptr = fr.stack_watermark;
          const int ret_slot = fr.ret_slot;
          frames.pop_back();
          if (frames.empty()) {
            final_return = rv;
          } else if (ret_slot >= 0) {
            frames.back().slots[static_cast<std::size_t>(ret_slot)] = rv;
          }
          break;
        }
        case Opcode::kUnreachable: return Status::error("interpreter: executed unreachable");
        default:
          if (ir::opcode_is_binary(d.op)) {
            fr.slots[static_cast<std::size_t>(d.dest_slot)] =
                eval_binary(d.op, value_of(d.ops[0]), value_of(d.ops[1]), d.bits);
            ++fr.ip;
          } else {
            return Status::error("interpreter: unhandled opcode");
          }
          break;
      }
    }

    ExecutionResult result;
    result.return_value = final_return;
    result.instructions_executed = executed;
    result.profile = std::move(profile);
    // Checksum over (name, final contents) of every written global: the
    // observable final state (see the header for why only written globals).
    std::uint64_t h = kFnvOffset;
    for (const GlobalRegion& r : regions) {
      if (!r.dirty) continue;
      h = fnv1a(r.global->name(), h);
      for (std::uint64_t i = 0; i < r.size; ++i) {
        h ^= memory[r.base + i];
        h *= kFnvPrime;
      }
    }
    result.memory_checksum = h;
    profile = Profile{};
    return result;
  }

  void enter_block(Frame& fr, int block_index) {
    fr.prev_block = -1;
    fr.block = block_index;
    fr.ip = 0;
    ++profile.block_counts[functions[static_cast<std::size_t>(fr.func)]
                               .blocks[static_cast<std::size_t>(block_index)]
                               .src];
  }

  void jump(Frame& fr, int target) {
    DecodedFunction& fn = functions[static_cast<std::size_t>(fr.func)];
    DecodedBlock& next = fn.blocks[static_cast<std::size_t>(target)];
    // Parallel phi assignment keyed on the edge we arrive through.
    if (!next.phis.empty()) {
      const int from = fr.block;
      phi_buffer.clear();
      for (const DecodedPhi& phi : next.phis) {
        std::int64_t v = 0;
        for (const auto& [pred_idx, ref] : phi.incoming) {
          if (pred_idx == from) {
            v = ref.kind == OperandKind::kImm ? ref.imm
                                              : fr.slots[static_cast<std::size_t>(ref.slot)];
            break;
          }
        }
        phi_buffer.push_back(v);
      }
      for (std::size_t i = 0; i < next.phis.size(); ++i) {
        fr.slots[static_cast<std::size_t>(next.phis[i].dest_slot)] = phi_buffer[i];
      }
      executed += next.phis.size();
    }
    fr.prev_block = fr.block;
    fr.block = target;
    fr.ip = 0;
    ++profile.block_counts[next.src];
  }
};

Interpreter::Interpreter(const ir::Module& module, InterpreterOptions options)
    : impl_(std::make_unique<Impl>(module, options)) {}

Interpreter::~Interpreter() = default;

Result<ExecutionResult> Interpreter::run() { return impl_->run(); }

Result<ExecutionResult> run_module(const ir::Module& module, InterpreterOptions options) {
  Interpreter interp(module, options);
  return interp.run();
}

}  // namespace autophase::interp
