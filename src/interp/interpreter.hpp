// IR interpreter. Plays two roles from the paper's toolchain:
//   1. the "software trace" profiler feeding LegUp-style cycle estimation
//      (per-basic-block execution counts, dynamic call counts, dynamic
//      element counts for variable-latency mem intrinsics);
//   2. the golden functional model for semantics-preservation property tests
//      (every Table-1 pass must preserve run().return_value and the global
//      memory checksum).
//
// For speed the module is compiled to a dense register-slot bytecode once at
// construction; executing costs tens of nanoseconds per dynamic instruction.
//
// Defined semantics (no UB, matching hardware which does not trap):
//   * integer overflow wraps (two's complement);
//   * division / remainder by zero yields 0;
//   * shift amounts are taken modulo the bit width;
//   * out-of-bounds memory access aborts execution with an error Status.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "ir/module.hpp"
#include "support/status.hpp"

namespace autophase::interp {

/// Execution profile consumed by the HLS cycle estimator.
struct Profile {
  /// Dynamic execution count per basic block.
  std::unordered_map<const ir::BasicBlock*, std::uint64_t> block_counts;
  /// Number of dynamic call instructions executed (call handshake overhead).
  std::uint64_t dynamic_calls = 0;
  /// Total elements processed per memset/memcpy site (variable latency).
  std::unordered_map<const ir::Instruction*, std::uint64_t> mem_intrinsic_elems;
};

struct ExecutionResult {
  std::int64_t return_value = 0;
  std::uint64_t instructions_executed = 0;
  /// FNV-1a hash over the name + final contents of every global variable the
  /// execution actually wrote to. Restricting to dynamically-written globals
  /// makes the checksum a sound equivalence oracle: passes may delete
  /// never-referenced globals (-globaldce), but no correct pass can remove a
  /// global the program writes.
  std::uint64_t memory_checksum = 0;
  Profile profile;
};

struct InterpreterOptions {
  std::uint64_t max_instructions = 20'000'000;
  std::size_t max_call_depth = 2048;
  std::size_t memory_bytes = 1u << 22;  // 4 MiB arena
};

class Interpreter {
 public:
  /// Compiles `module` to bytecode. The module must stay alive and
  /// unmodified while this interpreter is used.
  explicit Interpreter(const ir::Module& module, InterpreterOptions options = {});
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Executes `main` (which by convention takes no arguments). Thread-safe
  /// for concurrent calls on distinct Interpreter instances only.
  Result<ExecutionResult> run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience: compile + run.
Result<ExecutionResult> run_module(const ir::Module& module, InterpreterOptions options = {});

}  // namespace autophase::interp
