// Unified process metrics: a thread-safe registry of counters, gauges, and
// mergeable fixed-bucket histograms, replacing the per-component bespoke
// stats (CompileService latency reservoirs, FleetMonitor's pooled-sample
// merge, EvalService counters) with one instrument vocabulary.
//
// The histogram is the load-bearing piece: every histogram in the fleet uses
// the same log-spaced bucket layout (HistogramSpec), so a fleet percentile is
// computed from the *summed* per-node bucket counts — merging is associative
// and commutative by construction, and two monitors merging in different
// orders get bit-identical snapshots. That replaces shipping raw latency
// reservoirs across the wire (O(window) bytes, truncation under load) with
// O(buckets) bytes and no truncation ever.
//
// Instruments are created once (idempotently, keyed by name + labels) and
// the returned handles are plain atomics — recording on a hot path is a
// relaxed fetch_add, no lock, no map lookup. A registry-wide `enabled` flag
// lets instrumented code compile its record calls down to a single branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace autophase::obs {

/// Fixed log-spaced bucket layout shared by every histogram in the process
/// (and, transitively, the fleet: snapshots merge only with an identical
/// spec). Bucket i spans [lower_bound(i), lower_bound(i+1)); values below
/// `min` land in bucket 0, values at or above the top bound land in the last
/// (overflow) bucket. Defaults cover 1us..~100s when recording milliseconds.
struct HistogramSpec {
  double min = 1e-3;            // lower bound of bucket 1 (bucket 0 = underflow)
  double growth = 1.2589254117941673;  // 10^(1/10): ten buckets per decade
  std::uint32_t buckets = 96;   // ~9.5 decades of range + under/overflow

  [[nodiscard]] bool operator==(const HistogramSpec& o) const noexcept {
    return min == o.min && growth == o.growth && buckets == o.buckets;
  }
  /// Inclusive lower edge of bucket `i` (0 = underflow bucket, edge 0).
  [[nodiscard]] double lower_bound(std::uint32_t i) const noexcept;
  /// Exclusive upper edge of bucket `i` (+inf for the overflow bucket).
  [[nodiscard]] double upper_bound(std::uint32_t i) const noexcept;
  [[nodiscard]] std::uint32_t bucket_for(double value) const noexcept;
};

/// A histogram's state at one instant; the unit that crosses the wire and
/// merges across nodes. Quantiles interpolate inside the winning bucket, so
/// a merged quantile differs from the exact pooled-sample quantile by at
/// most one bucket width (growth - 1, i.e. ~26% relative with the default
/// ten-buckets-per-decade layout — and typically far less).
struct HistogramSnapshot {
  HistogramSpec spec{};
  std::vector<std::uint64_t> counts;  // spec.buckets entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // smallest / largest recorded value (0 when empty)
  double max = 0.0;

  /// Bucket-wise merge. Requires an identical spec (asserted); merging is
  /// associative and commutative, so fleet aggregation order cannot matter.
  HistogramSnapshot& operator+=(const HistogramSnapshot& o);

  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Monotonic counter. Handles stay valid for the registry's lifetime.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Settable instantaneous value (doubles; set/add/max-update).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  /// Ratchets the gauge up to `v` (high-water marks like max queue depth).
  void update_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free fixed-bucket histogram (see HistogramSpec). record() is two
/// relaxed atomic adds plus a CAS loop each for min/max — safe from any
/// number of threads; snapshot() is a consistent-enough read for monitoring
/// (bucket sums may trail `count` by in-flight records, never by more).
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec = {});

  void record(double value) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const HistogramSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  HistogramSpec spec_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
};

/// `name{label="value",...}` — the exposition identity of one instrument.
struct MetricKey {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // sorted by key

  bool operator<(const MetricKey& o) const noexcept {
    return name != o.name ? name < o.name : labels < o.labels;
  }
};

/// One registry = one scrape surface. Each ServeNode (its CompileService)
/// owns a registry so an in-process fleet keeps per-node metrics separate;
/// standalone tools use the process-wide default_registry(). Instrument
/// creation is idempotent: the same (name, labels) always returns the same
/// handle, so components can re-acquire instead of caching if they prefer.
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;
  /// Polled at exposition time — views over state owned elsewhere (an
  /// EvalService's sharded counters, a registry's size) without double
  /// accounting.
  using GaugeFn = std::function<double()>;

  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {}, HistogramSpec spec = {});
  /// Registers (or replaces) a callback gauge.
  void gauge_fn(const std::string& name, Labels labels, GaugeFn fn);

  /// All histograms under `name`, merged bucket-wise (e.g. the per-model
  /// cycle-error histograms folded into one fleet-regret view).
  [[nodiscard]] HistogramSnapshot merged_histogram(const std::string& name) const;
  [[nodiscard]] std::vector<std::pair<MetricKey, HistogramSnapshot>> histograms(
      const std::string& name) const;
  /// All counters under `name` with their current values, ordered by label
  /// set — lets a labelled family (per-model request counts) be read back as
  /// a deterministic breakdown without shadow bookkeeping.
  [[nodiscard]] std::vector<std::pair<MetricKey, std::uint64_t>> counters(
      const std::string& name) const;

  /// Prometheus-style text exposition: one `name{labels} value` line per
  /// counter/gauge, `_bucket`/`_sum`/`_count` series per histogram (with
  /// cumulative `le` buckets), deterministically ordered by (name, labels).
  [[nodiscard]] std::string render_text() const;

  /// Cheap-instrumentation switch: scoped-timer macros and optional record
  /// sites check this single flag before doing any work.
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::map<MetricKey, std::unique_ptr<Counter>> counters_;
  std::map<MetricKey, std::unique_ptr<Gauge>> gauges_;
  std::map<MetricKey, std::unique_ptr<Histogram>> histograms_;
  std::map<MetricKey, GaugeFn> gauge_fns_;
  std::atomic<bool> enabled_{true};
};

/// Process-wide default registry (tools, tests, single-service embedders).
MetricsRegistry& default_registry();

}  // namespace autophase::obs
