#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "support/hash.hpp"
#include "support/str.hpp"

namespace autophase::obs {

namespace {

using Clock = std::chrono::steady_clock;

const Clock::time_point g_epoch = Clock::now();

/// Stable small ordinal per thread (raw ids are opaque and enormous).
std::uint64_t thread_ordinal() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_args(std::string& out,
                 const std::vector<std::pair<std::string, std::string>>& attrs) {
  for (const auto& [key, value] : attrs) {
    out += ",\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
}

}  // namespace

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - g_epoch).count());
}

std::uint64_t current_thread_ordinal() noexcept { return thread_ordinal(); }

std::string TraceId::hex() const { return strf("%016llx%016llx",
                                               static_cast<unsigned long long>(hi),
                                               static_cast<unsigned long long>(lo)); }

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(std::size_t capacity) {
  stripe_capacity_ = std::max<std::size_t>(1, capacity / kStripes);
  stripes_ = std::vector<Stripe>(kStripes);
  // Seed trace-id uniqueness from the epoch + this object's address: two
  // processes (or two tracers) can never mint colliding 128-bit ids even
  // though the low word is a plain counter. Not an RNG on purpose — tracing
  // must never perturb seeded determinism elsewhere.
  process_seed_ = hash_combine(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()),
      reinterpret_cast<std::uintptr_t>(this));
}

TraceContext Tracer::begin_trace() noexcept {
  if (!enabled()) return {};
  TraceContext ctx;
  ctx.trace.hi = process_seed_;
  ctx.trace.lo = trace_counter_.fetch_add(1, std::memory_order_relaxed);
  ctx.span = 0;  // root spans have no parent
  return ctx;
}

TraceContext Tracer::child_of(const TraceContext& ctx) noexcept {
  if (!ctx.valid()) return {};
  TraceContext child = ctx;
  child.span = next_span_id();
  return child;
}

std::uint64_t Tracer::next_span_id() noexcept {
  return next_span_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record(SpanRecord span) {
  if (!enabled() || !span.trace.valid()) return;
  Stripe& stripe = stripes_[span.span % kStripes];
  const std::lock_guard<std::mutex> lock(stripe.mutex);
  ++stripe.total;
  if (stripe.ring.size() < stripe_capacity_) {
    stripe.ring.push_back(std::move(span));
  } else {
    // Bounded: overwrite the oldest slot in this stripe (counted as a drop).
    stripe.ring[stripe.next] = std::move(span);
    stripe.next = (stripe.next + 1) % stripe_capacity_;
  }
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  for (const Stripe& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    out.insert(out.end(), stripe.ring.begin(), stripe.ring.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.span < b.span;
  });
  return out;
}

std::uint64_t Tracer::dropped() const noexcept {
  std::uint64_t dropped = 0;
  for (const Stripe& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    dropped += stripe.total - stripe.ring.size();
  }
  return dropped;
}

std::uint64_t Tracer::recorded() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.total;
  }
  return total;
}

void Tracer::clear() {
  for (Stripe& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.ring.clear();
    stripe.next = 0;
    stripe.total = 0;
  }
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::string& process_name) {
  return chrome_trace_json(spans, {}, process_name);
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::vector<InstantEvent>& instants,
                              const std::string& process_name) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  sep();
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"" +
         json_escape(process_name) + "\"}}";
  for (const SpanRecord& span : spans) {
    sep();
    out += strf("{\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,\"dur\":%.3f,\"name\":\"",
                static_cast<unsigned long long>(span.thread),
                static_cast<double>(span.start_ns) / 1e3,
                static_cast<double>(span.duration_ns) / 1e3);
    out += json_escape(span.name);
    out += "\",\"args\":{\"trace_id\":\"" + span.trace.hex() + "\"";
    out += strf(",\"span_id\":\"%016llx\"", static_cast<unsigned long long>(span.span));
    if (span.parent != 0) {
      out += strf(",\"parent_id\":\"%016llx\"", static_cast<unsigned long long>(span.parent));
    }
    append_args(out, span.attrs);
    out += "}}";
  }
  // Instant events ride separate named tracks (tid strings via metadata are
  // overkill; a large fixed tid offset keeps them off the span threads).
  std::vector<std::string> tracks;
  for (const InstantEvent& ev : instants) {
    if (std::find(tracks.begin(), tracks.end(), ev.track) == tracks.end()) {
      tracks.push_back(ev.track);
    }
    const auto tid =
        900 + (std::find(tracks.begin(), tracks.end(), ev.track) - tracks.begin());
    sep();
    out += strf("{\"ph\":\"i\",\"pid\":1,\"tid\":%lld,\"ts\":%.3f,\"s\":\"t\",\"name\":\"",
                static_cast<long long>(tid), static_cast<double>(ev.ts_us));
    out += json_escape(ev.name);
    out += "\",\"args\":{";
    bool first_attr = true;
    for (const auto& [key, value] : ev.attrs) {
      if (!first_attr) out += ",";
      first_attr = false;
      out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
    }
    out += "}}";
  }
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    sep();
    out += strf("{\"ph\":\"M\",\"pid\":1,\"tid\":%lld,\"name\":\"thread_name\","
                "\"args\":{\"name\":\"",
                static_cast<long long>(900 + i));
    out += json_escape(tracks[i]);
    out += "\"}}";
  }
  out += "]}";
  return out;
}

Status write_chrome_trace(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::error(strf("cannot open trace file %s", path.c_str()));
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::error(strf("short write to trace file %s", path.c_str()));
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(Tracer& tracer, const TraceContext& ctx, const char* name) noexcept {
  if (!tracer.enabled() || !ctx.valid()) return;  // the single disabled branch
  tracer_ = &tracer;
  parent_ = ctx.span;
  ctx_ = tracer.child_of(ctx);
  name_ = name;
  start_ns_ = trace_now_ns();
  armed_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  SpanRecord span;
  span.trace = ctx_.trace;
  span.span = ctx_.span;
  span.parent = parent_;
  span.name = name_;
  span.start_ns = start_ns_;
  span.duration_ns = trace_now_ns() - start_ns_;
  span.thread = thread_ordinal();
  span.attrs = std::move(attrs_);
  tracer_->record(std::move(span));
}

void ScopedSpan::attr(const char* key, std::string value) {
  if (armed_) attrs_.emplace_back(key, std::move(value));
}
void ScopedSpan::attr(const char* key, const char* value) {
  if (armed_) attrs_.emplace_back(key, value);
}
void ScopedSpan::attr(const char* key, std::uint64_t value) {
  if (armed_) attrs_.emplace_back(key, strf("%llu", static_cast<unsigned long long>(value)));
}
void ScopedSpan::attr(const char* key, std::int64_t value) {
  if (armed_) attrs_.emplace_back(key, strf("%lld", static_cast<long long>(value)));
}
void ScopedSpan::attr(const char* key, bool value) {
  if (armed_) attrs_.emplace_back(key, value ? "true" : "false");
}

}  // namespace autophase::obs
