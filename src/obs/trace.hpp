// End-to-end request tracing. A TraceContext (128-bit trace id + 64-bit span
// id) is allocated when a compile request enters the system and rides the
// request through every stage — bounded queue, batcher fold, each beam-decode
// step, the eval-cache lookup — and across the wire (a tagged optional field
// on the compile-request payload), so a remote compile stitches client and
// owning-node spans into one trace.
//
// Finished spans land in a lock-striped bounded ring buffer with drop
// accounting: tracing a long-running node costs O(capacity) memory forever,
// and under burst the oldest spans in a stripe are overwritten (counted, so
// an exported trace says how much it lost). Export is Chrome trace-event
// JSON ("traceEvents" with ph:"X" complete events), loadable directly in
// Perfetto; SimWorld's chaos traces export through the same writer, so a
// production trace and a simulated partition are viewed with one tool.
//
// Cheap by construction: when tracing is disabled, AP_SPAN costs exactly one
// relaxed atomic load and branch — no clock reads, no allocation.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/status.hpp"

namespace autophase::obs {

/// 128-bit trace identity. Zero means "not traced" — the serving path treats
/// an all-zero context as tracing-off and records nothing for the request.
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool valid() const noexcept { return (hi | lo) != 0; }
  [[nodiscard]] bool operator==(const TraceId& o) const noexcept {
    return hi == o.hi && lo == o.lo;
  }
  /// 32 hex chars, the id Perfetto shows and tests compare.
  [[nodiscard]] std::string hex() const;
};

struct TraceContext {
  TraceId trace{};
  std::uint64_t span = 0;    // the current (parent-to-be) span id
  [[nodiscard]] bool valid() const noexcept { return trace.valid(); }
};

/// One finished span. Attributes are small (stage facts: queue depth at
/// entry, batch rows folded into, cache hit/miss, model version served) and
/// stringified at record time.
struct SpanRecord {
  TraceId trace{};
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::uint64_t start_ns = 0;  // steady-clock nanos (one clock per process)
  std::uint64_t duration_ns = 0;
  std::uint64_t thread = 0;  // stable per-thread ordinal (Perfetto tid)
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Steady-clock nanos from the tracer's epoch — the one timestamp source
/// every span (and the structured log ring) shares.
std::uint64_t trace_now_ns() noexcept;

/// Stable small ordinal for the calling thread (what SpanRecord::thread and
/// the Perfetto tid columns carry) — for hand-assembled spans whose start
/// predates the record site (queue-wait spans backdated to enqueue time).
std::uint64_t current_thread_ordinal() noexcept;

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;
  static constexpr std::size_t kStripes = 8;  // power of two

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Tracing switch; off (the default) makes begin() return invalid
  /// contexts and record() drop instantly, so instrumented code costs one
  /// branch.
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// New root context (fresh 128-bit trace id). Invalid when disabled.
  TraceContext begin_trace() noexcept;
  /// Child context: same trace, fresh span id, parent = ctx.span.
  TraceContext child_of(const TraceContext& ctx) noexcept;
  /// Fresh span id (for spans recorded under an existing context).
  std::uint64_t next_span_id() noexcept;

  /// Stores one finished span (no-op on invalid trace or disabled tracer).
  void record(SpanRecord span);

  /// Every retained span, ordered by start time. `dropped` (optional)
  /// reports ring overwrites since the last clear().
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  void clear();

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<SpanRecord> ring;  // capacity_/kStripes slots
    std::size_t next = 0;
    std::uint64_t total = 0;  // spans ever recorded into this stripe
  };

  std::size_t stripe_capacity_ = 0;
  std::vector<Stripe> stripes_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_span_{1};
  std::atomic<std::uint64_t> trace_counter_{1};
  std::uint64_t process_seed_ = 0;  // mixes into trace ids: unique across processes
};

/// Process-wide tracer (all in-process nodes share it; their spans are
/// already separated by trace id).
Tracer& tracer();

/// Chrome trace-event JSON ("traceEvents" array of ph:"X" events, ts/dur in
/// microseconds, trace/span ids in args) — open in Perfetto or
/// chrome://tracing. `process_name` labels the emitting process.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::string& process_name = "autophase");

/// Extra Chrome trace events appended from non-span sources (SimWorld's
/// chaos timeline). ts is microseconds; events render as instant events on
/// a per-source track.
struct InstantEvent {
  std::uint64_t ts_us = 0;
  std::string name;
  std::string track;  // rendered as the tid label
  std::vector<std::pair<std::string, std::string>> attrs;
};
std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::vector<InstantEvent>& instants,
                              const std::string& process_name);

Status write_chrome_trace(const std::string& path, const std::string& json);

/// RAII span: stamps start on construction, records on destruction. Only
/// arms itself when `tracer` is enabled AND `ctx` is valid, so the disabled
/// cost is one branch.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const TraceContext& ctx, const char* name) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The context children of this span should carry.
  [[nodiscard]] TraceContext context() const noexcept { return ctx_; }
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  void attr(const char* key, std::string value);
  /// Without this overload a string literal would convert to bool, not
  /// std::string (standard conversions outrank user-defined ones).
  void attr(const char* key, const char* value);
  void attr(const char* key, std::uint64_t value);
  void attr(const char* key, std::int64_t value);
  void attr(const char* key, bool value);

 private:
  Tracer* tracer_ = nullptr;
  TraceContext ctx_{};  // this span's own (trace, span); parent in parent_
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
  const char* name_ = "";
  bool armed_ = false;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace autophase::obs

/// Scoped span against the process tracer; compiles to one branch when off.
#define AP_SPAN(var, ctx, name) ::autophase::obs::ScopedSpan var(::autophase::obs::tracer(), ctx, name)
