#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "support/str.hpp"

namespace autophase::obs {

// ---------------------------------------------------------------------------
// HistogramSpec
// ---------------------------------------------------------------------------

double HistogramSpec::lower_bound(std::uint32_t i) const noexcept {
  if (i == 0) return 0.0;
  return min * std::pow(growth, static_cast<double>(i - 1));
}

double HistogramSpec::upper_bound(std::uint32_t i) const noexcept {
  if (i + 1 >= buckets) return std::numeric_limits<double>::infinity();
  return lower_bound(i + 1);
}

std::uint32_t HistogramSpec::bucket_for(double value) const noexcept {
  if (!(value >= min)) return 0;  // negatives and NaNs land in underflow
  // log-spaced: index = 1 + floor(log(value/min) / log(growth)). Computed in
  // doubles, then clamped; the edge-rounding worst case moves a value one
  // bucket, which the quantile error bound already absorbs.
  const double idx = std::floor(std::log(value / min) / std::log(growth));
  const double clamped = std::max(0.0, idx);
  const auto bucket = static_cast<std::uint32_t>(clamped) + 1;
  return std::min(bucket, buckets - 1);
}

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

HistogramSnapshot& HistogramSnapshot::operator+=(const HistogramSnapshot& o) {
  assert(spec == o.spec && "histogram merge requires identical bucket specs");
  if (counts.size() < o.counts.size()) counts.resize(o.counts.size(), 0);
  for (std::size_t i = 0; i < o.counts.size(); ++i) counts[i] += o.counts[i];
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else if (o.count != 0) {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  return *this;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank on the cumulative bucket counts (the same convention the
  // old pooled-sample path used), then interpolate linearly inside the
  // winning bucket. Observed min/max tighten the edge buckets so p0/p100
  // are exact.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] <= rank) {
      seen += counts[i];
      continue;
    }
    double lo = spec.lower_bound(i);
    double hi = spec.upper_bound(i);
    lo = std::max(lo, min);
    hi = std::isinf(hi) ? max : std::min(hi, max);
    if (hi < lo) hi = lo;
    const double within =
        counts[i] <= 1 ? 0.5
                       : static_cast<double>(rank - seen) / static_cast<double>(counts[i] - 1);
    return lo + (hi - lo) * within;
  }
  return max;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(HistogramSpec spec) : spec_(spec), counts_(spec.buckets) {}

void Histogram::record(double value) noexcept {
  counts_[spec_.bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value, std::memory_order_relaxed)) {
  }
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    // First recorder seeds min/max; the CAS ratchets below correct any racer
    // that slipped in between (they loop against the seeded values).
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (value < lo && !min_.compare_exchange_weak(lo, value, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (value > hi && !max_.compare_exchange_weak(hi, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.spec = spec_;
  s.counts.resize(counts_.size());
  // Read the total first: the bucket sum can only be >= this total (records
  // between the two reads), so `count` never overstates the buckets.
  s.count = count_.load(std::memory_order_relaxed);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    bucket_total += s.counts[i];
  }
  s.count = std::min(s.count, bucket_total);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (any_.load(std::memory_order_relaxed)) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  return s;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

MetricKey make_key(std::string name, MetricsRegistry::Labels labels) {
  std::sort(labels.begin(), labels.end());
  return MetricKey{std::move(name), std::move(labels)};
}

std::string render_key(const MetricKey& key) {
  if (key.labels.empty()) return key.name;
  std::string out = key.name + "{";
  for (std::size_t i = 0; i < key.labels.size(); ++i) {
    if (i > 0) out += ",";
    out += key.labels[i].first + "=\"" + key.labels[i].second + "\"";
  }
  out += "}";
  return out;
}

std::string render_key_with(const MetricKey& key, const char* extra_label,
                            const std::string& extra_value, const char* suffix) {
  MetricKey augmented = key;
  augmented.name += suffix;
  augmented.labels.emplace_back(extra_label, extra_value);
  std::sort(augmented.labels.begin(), augmented.labels.end());
  return render_key(augmented);
}

std::string render_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  // Trim trailing zeros so counters expose as integers.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return strf("%lld", static_cast<long long>(v));
  }
  return strf("%.6g", v);
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[make_key(name, std::move(labels))];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[make_key(name, std::move(labels))];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      HistogramSpec spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[make_key(name, std::move(labels))];
  if (slot == nullptr) slot = std::make_unique<Histogram>(spec);
  return *slot;
}

void MetricsRegistry::gauge_fn(const std::string& name, Labels labels, GaugeFn fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauge_fns_[make_key(name, std::move(labels))] = std::move(fn);
}

HistogramSnapshot MetricsRegistry::merged_histogram(const std::string& name) const {
  HistogramSnapshot merged;
  bool first = true;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, hist] : histograms_) {
    if (key.name != name) continue;
    if (first) {
      merged = hist->snapshot();
      first = false;
    } else {
      merged += hist->snapshot();
    }
  }
  return merged;
}

std::vector<std::pair<MetricKey, HistogramSnapshot>> MetricsRegistry::histograms(
    const std::string& name) const {
  std::vector<std::pair<MetricKey, HistogramSnapshot>> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, hist] : histograms_) {
    if (key.name == name) out.emplace_back(key, hist->snapshot());
  }
  return out;
}

std::vector<std::pair<MetricKey, std::uint64_t>> MetricsRegistry::counters(
    const std::string& name) const {
  std::vector<std::pair<MetricKey, std::uint64_t>> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, c] : counters_) {
    if (key.name == name) out.emplace_back(key, c->value());
  }
  return out;
}

std::string MetricsRegistry::render_text() const {
  // Callback gauges are evaluated outside the registry lock: a callback that
  // itself takes locks (an EvalService aggregating shards) must never nest
  // under ours.
  std::vector<std::pair<MetricKey, GaugeFn>> fns;
  std::string out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, c] : counters_) {
      out += render_key(key) + " " + render_value(static_cast<double>(c->value())) + "\n";
    }
    for (const auto& [key, g] : gauges_) {
      out += render_key(key) + " " + render_value(g->value()) + "\n";
    }
    for (const auto& [key, h] : histograms_) {
      const HistogramSnapshot s = h->snapshot();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < s.counts.size(); ++i) {
        cumulative += s.counts[i];
        if (s.counts[i] == 0 && i + 1 != s.counts.size()) continue;  // sparse
        const double edge = s.spec.upper_bound(static_cast<std::uint32_t>(i));
        out += render_key_with(key, "le", render_value(edge), "_bucket") + " " +
               render_value(static_cast<double>(cumulative)) + "\n";
      }
      out += render_key(MetricKey{key.name + "_sum", key.labels}) + " " +
             render_value(s.sum) + "\n";
      out += render_key(MetricKey{key.name + "_count", key.labels}) + " " +
             render_value(static_cast<double>(s.count)) + "\n";
    }
    fns.reserve(gauge_fns_.size());
    for (const auto& [key, fn] : gauge_fns_) fns.emplace_back(key, fn);
  }
  for (const auto& [key, fn] : fns) {
    out += render_key(key) + " " + render_value(fn()) + "\n";
  }
  return out;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace autophase::obs
