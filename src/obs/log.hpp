// obs-side view of the structured log ring (the capture itself lives in
// support/log so every layer can log without depending on obs). Pulled into
// this namespace because retrieval is an observability operation: test
// harnesses dump it on failure, operators read it next to metrics + traces.
#pragma once

#include "support/log.hpp"

namespace autophase::obs {

using autophase::LogRecord;

/// Last `max` structured log records (all retained when max == 0).
inline std::vector<LogRecord> recent_logs(std::size_t max = 0) {
  return autophase::recent_logs(max);
}
/// Formatted dump of recent_logs() for failure reports.
inline std::string recent_logs_text(std::size_t max = 0) {
  return autophase::format_recent_logs(max);
}

}  // namespace autophase::obs
