#include "learn/online_trainer.hpp"

#include <utility>

#include "learn/collector.hpp"
#include "support/log.hpp"
#include "support/str.hpp"

namespace autophase::learn {

OnlineTrainer::OnlineTrainer(std::shared_ptr<runtime::EvalService> eval,
                             OnlineTrainerConfig config)
    : eval_(std::move(eval)), config_(std::move(config)) {}

Result<FineTuneReport> OnlineTrainer::fine_tune(const serve::PolicyArtifact& incumbent,
                                                const std::vector<ProvenanceRecord>& traffic,
                                                const std::vector<const ir::Module*>& corpus) {
  if (!eval_) return Status::error("online trainer has no eval service");
  if (!incumbent.normalizer.identity()) {
    // The training env feeds raw observations to the nets; fine-tuning a
    // whitened policy on unwhitened inputs would silently destroy it.
    return Status::error("cannot fine-tune an artifact with a feature normalizer");
  }

  auto traffic_programs = unique_programs(traffic, config_.max_traffic_programs);

  std::vector<const ir::Module*> mixture;
  mixture.reserve(traffic_programs.size() + corpus.size());
  for (const auto& program : traffic_programs) mixture.push_back(program.get());
  for (const auto* program : corpus) {
    if (program != nullptr) mixture.push_back(program);
  }
  if (mixture.empty()) return Status::error("no programs to fine-tune on");

  rl::EnvConfig env_config = serve::env_config_of(incumbent.spec);
  env_config.eval_service = eval_;
  rl::PhaseOrderEnv env(mixture, env_config);

  rl::PpoConfig ppo = config_.ppo;
  ppo.hidden = incumbent.policy.config().hidden;  // warm start dictates shapes
  rl::PpoTrainer trainer(env, ppo);
  const Status warmed = trainer.warm_start(
      incumbent.policy, incumbent.value.has_value() ? &incumbent.value.value() : nullptr);
  if (!warmed.is_ok()) {
    return Status::error(strf("warm start from incumbent %s v%u failed: %s",
                              incumbent.name.c_str(), incumbent.version,
                              warmed.message().c_str()));
  }

  std::vector<rl::IterationStats> iterations = trainer.train();

  serve::PolicyArtifact canary =
      serve::make_artifact(trainer.export_policy(), env_config, incumbent.normalizer);
  canary.forest = incumbent.forest;  // the §4 relevance filter rides along
  serve::attach_baselines(canary, mixture, *eval_);

  FineTuneReport report{std::move(canary), std::move(iterations), traffic_programs.size(),
                        corpus.size()};
  AP_CLOG(kInfo, "learn") << "fine-tuned canary from " << incumbent.name << " v"
                          << incumbent.version << " on " << report.traffic_programs
                          << " traffic + " << report.corpus_programs << " corpus programs ("
                          << report.iterations.size() << " PPO iterations)";
  return report;
}

}  // namespace autophase::learn
