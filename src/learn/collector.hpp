// learn::Collector: the trainer-side pump of the online-learning loop. It
// drains provenance records from every node of a serving fleet over the wire
// (RemoteCompileClient::drain_provenance, MsgType::kProvenance) into a local
// ProvenanceLog, and replays drained records back into training material:
// the recorded module bytes are decoded (deserialize_module is the trust
// boundary) and re-measured through the trainer's own EvalService, so the
// trainer's ground truth never depends on a remote node's honesty or on a
// cycle-estimator config it cannot see.
#pragma once

#include <memory>
#include <vector>

#include "learn/provenance.hpp"
#include "runtime/eval_service.hpp"
#include "serve/remote_client.hpp"

namespace autophase::learn {

struct CollectReport {
  std::size_t fetched = 0;        // records drained this pass
  std::size_t nodes_reached = 0;  // nodes that answered
  std::size_t nodes_failed = 0;   // transport/remote errors (skipped)
  std::uint64_t remaining = 0;    // records still queued fleet-wide
  std::uint64_t dropped = 0;      // lifetime fleet-wide bounded-log losses
};

class Collector {
 public:
  /// `max_per_drain` bounds one kProvenance reply; collect() loops per node
  /// until its log is empty, so the bound shapes frame sizes, not coverage.
  explicit Collector(std::shared_ptr<serve::RemoteCompileClient> client,
                     std::size_t max_per_drain = 512);

  /// One pass over the fleet, appending every drained record into `into`.
  /// Unreachable nodes are skipped and reported, not fatal: the loop runs
  /// against a live fleet where nodes come and go.
  CollectReport collect(ProvenanceLog& into);

 private:
  std::shared_ptr<serve::RemoteCompileClient> client_;
  std::size_t max_per_drain_;
};

/// A record rematerialised for training/evaluation: the decoded program plus
/// locally re-measured ground truth for the served pass sequence.
struct ReplayedRecord {
  ProvenanceRecord record;
  std::unique_ptr<ir::Module> module;
  runtime::Measure baseline;          // unoptimised program, re-measured
  std::uint64_t sequence_cycles = 0;  // record.sequence re-applied + measured
};

/// Decodes and re-measures `records` through `eval`. Records whose module
/// bytes fail validation are dropped (they came off the wire); the survivors
/// are exactly the rl::Env-compatible trajectories the trainer feeds on.
std::vector<ReplayedRecord> replay_records(std::vector<ProvenanceRecord> records,
                                           runtime::EvalService& eval);

/// The distinct programs behind `records` (deduplicated by fingerprint, in
/// first-seen order) — the served-workload half of a fine-tuning corpus.
/// `max_programs` caps the result (0 = unlimited).
std::vector<std::unique_ptr<ir::Module>> unique_programs(
    const std::vector<ProvenanceRecord>& records, std::size_t max_programs = 0);

}  // namespace autophase::learn
