#include "learn/provenance.hpp"

#include <algorithm>
#include <bit>
#include <iterator>
#include <utility>

#include "support/hash.hpp"
#include "support/str.hpp"

namespace autophase::learn {
namespace {

constexpr char kRecordsMagic[4] = {'A', 'P', 'P', 'V'};  // AutoPhase ProVenance

}  // namespace

void write_provenance_record(serve::ByteWriter& w, const ProvenanceRecord& record) {
  w.u64(record.fingerprint);
  w.str(record.module_bytes);
  w.u8(static_cast<std::uint8_t>(record.objective));
  w.str(record.model);
  w.u32(record.version);
  w.u8(record.canary ? 1 : 0);
  w.i32_vec(record.sequence);
  w.u64(record.baseline_cycles);
  w.u64(record.predicted_cycles);
  w.u64(record.measured_cycles);
  w.f64(record.measured_area);
  w.f64(record.weights.cycles);
  w.f64(record.weights.area);
  w.f64(record.weights.ir_size);
}

bool read_provenance_record(serve::ByteReader& r, ProvenanceRecord& record,
                            std::uint32_t version) {
  record.fingerprint = r.u64();
  record.module_bytes = r.str();
  const std::uint8_t objective = r.u8();
  record.model = r.str();
  record.version = r.u32();
  const std::uint8_t canary = r.u8();
  record.sequence = r.i32_vec();
  record.baseline_cycles = r.u64();
  record.predicted_cycles = r.u64();
  record.measured_cycles = r.u64();
  record.measured_area = r.f64();
  if (version >= 2) {
    record.weights.cycles = r.f64();
    record.weights.area = r.f64();
    record.weights.ir_size = r.f64();
  } else {
    record.weights = {};  // v1 records predate the weight vector
  }
  if (!r.ok()) return false;
  if (objective >= serve::kNumObjectives || canary > 1) return false;
  record.objective = static_cast<serve::Objective>(objective);
  record.canary = canary != 0;
  return true;
}

std::string serialize_records(const std::vector<ProvenanceRecord>& records) {
  serve::ByteWriter payload;
  payload.u64(records.size());
  for (const ProvenanceRecord& record : records) write_provenance_record(payload, record);
  serve::ByteWriter framed;
  framed.u32(std::bit_cast<std::uint32_t>(kRecordsMagic));
  framed.u32(kProvenanceRecordVersion);
  framed.str(payload.bytes());
  framed.u64(fnv1a(payload.bytes()));
  return framed.take();
}

Result<std::vector<ProvenanceRecord>> deserialize_records(std::string_view bytes) {
  serve::ByteReader r(bytes);
  if (r.u32() != std::bit_cast<std::uint32_t>(kRecordsMagic)) {
    return Status::error("provenance: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version == 0 || version > kProvenanceRecordVersion) {
    return Status::error(strf("provenance: unsupported record version %u", version));
  }
  const std::string payload = r.str();
  const std::uint64_t checksum = r.u64();
  if (!r.ok() || !r.at_end()) return Status::error("provenance: truncated or oversized");
  if (fnv1a(payload) != checksum) return Status::error("provenance: checksum mismatch");
  serve::ByteReader p(payload);
  const std::uint64_t count = p.u64();
  if (count > p.remaining() / kMinRecordBytes) {
    return Status::error("provenance: record count exceeds payload");
  }
  std::vector<ProvenanceRecord> records(static_cast<std::size_t>(count));
  for (ProvenanceRecord& record : records) {
    if (!read_provenance_record(p, record, version)) {
      return Status::error("provenance: malformed record");
    }
  }
  if (!p.ok() || !p.at_end()) return Status::error("provenance: trailing garbage in payload");
  return records;
}

ProvenanceLog::ProvenanceLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void ProvenanceLog::append(ProvenanceRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() - head_ >= capacity_) {
    ++head_;  // evict the oldest
    ++dropped_;
  }
  records_.push_back(std::move(record));
  // Compact once the dead prefix dominates, so memory stays O(capacity).
  if (head_ > capacity_) {
    records_.erase(records_.begin(), records_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

std::vector<ProvenanceRecord> ProvenanceLog::drain(std::size_t max) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t take = std::min(max, records_.size() - head_);
  std::vector<ProvenanceRecord> out;
  out.reserve(take);
  const auto first = records_.begin() + static_cast<std::ptrdiff_t>(head_);
  std::move(first, first + static_cast<std::ptrdiff_t>(take), std::back_inserter(out));
  head_ += take;
  if (head_ == records_.size()) {
    records_.clear();
    head_ = 0;
  }
  return out;
}

std::size_t ProvenanceLog::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size() - head_;
}

std::uint64_t ProvenanceLog::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string ProvenanceLog::serialize() const {
  std::vector<ProvenanceRecord> live;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    live.assign(records_.begin() + static_cast<std::ptrdiff_t>(head_), records_.end());
  }
  return serialize_records(live);
}

Status ProvenanceLog::restore(std::string_view bytes) {
  auto records = deserialize_records(bytes);
  if (!records.is_ok()) return records.status();
  for (ProvenanceRecord& record : records.value()) append(std::move(record));
  return Status::ok();
}

}  // namespace autophase::learn
