// learn::Promoter: the regret gate that closes the online-learning loop. A
// canary trained by the OnlineTrainer serves a deterministic slice of shadow
// traffic; the Promoter compares the two cohorts in the drained provenance —
// measured regret against the best-known result per program, plus
// predicted-vs-measured cycle calibration — and either promotes the canary
// (publishes it under the base name, so replication/gossip make it the fleet
// default) or rolls it back. Every decision is broadcast to the fleet as a
// kCanary control, logged, and counted (learn_promoted / learn_rolled_back).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "learn/provenance.hpp"
#include "serve/remote_client.hpp"
#include "support/status.hpp"

namespace autophase::learn {

struct PromotionPolicy {
  /// Minimum cohort sizes before a verdict; below either, the decision is
  /// kInsufficientData and the split keeps running.
  std::size_t min_canary_samples = 20;
  std::size_t min_incumbent_samples = 20;
  /// Canary regret may exceed incumbent regret by this much and still
  /// promote (ties promote: the canary has seen the newer traffic).
  double regret_margin = 0.0;
  /// Canary cycle-prediction error may exceed the incumbent's by this much —
  /// a model that wins on regret but has lost its calibration is suspect.
  double calibration_slack = 0.25;
};

enum class PromotionDecision {
  kInsufficientData = 0,
  kPromote = 1,
  kRollback = 2,
};

const char* promotion_decision_name(PromotionDecision decision) noexcept;

/// Per-cohort aggregate over the provenance records of one model.
struct CohortEvaluation {
  std::size_t samples = 0;
  /// Mean of (measured - best_known) / max(1, best_known) per record, where
  /// best_known is the minimum measured cycles for that program across BOTH
  /// cohorts — without the shared reference, the incumbent (which served
  /// every program first) would define "best" unilaterally.
  double mean_regret = 0.0;
  /// Mean of |predicted - measured| / max(1, measured) per record.
  double mean_cycle_error = 0.0;
};

struct PromotionReport {
  PromotionDecision decision = PromotionDecision::kInsufficientData;
  CohortEvaluation incumbent;
  CohortEvaluation canary;
  std::string reason;                  // human-readable decision trail
  std::uint32_t promoted_version = 0;  // version minted by publish on promote
};

/// Pure decision function over drained provenance — no I/O, fully unit
/// testable. Cohorts are selected by served-model name (`Provenance.model`,
/// which the shadow split attributes to the canary automatically).
PromotionReport evaluate_promotion(const std::vector<ProvenanceRecord>& records,
                                   const std::string& incumbent_model,
                                   const std::string& canary_model,
                                   const PromotionPolicy& policy);

class Promoter {
 public:
  Promoter(std::shared_ptr<serve::RemoteCompileClient> client, PromotionPolicy policy = {});

  /// Broadcasts a shadow split (kCanary/kStart) to every node: `fraction` of
  /// `base_model` traffic is served by `canary_model` (0 = its latest
  /// version). Fails if any node rejects or is unreachable — a half-split
  /// fleet would skew the cohorts.
  Status start_canary(const std::string& base_model, const std::string& canary_model,
                      std::uint32_t canary_version, double fraction);

  /// Evaluates the cohorts and acts on the verdict: on kPromote, publishes
  /// `canary` under `base_model` through `owner_node` (replication + gossip
  /// distribute it) and broadcasts kPromoted; on kRollback broadcasts
  /// kRolledBack; on kInsufficientData leaves the split running. The
  /// returned report always carries the evaluation, whatever the decision.
  Result<PromotionReport> decide(std::size_t owner_node, const std::string& base_model,
                                 const std::string& canary_model,
                                 const serve::PolicyArtifact& canary,
                                 const std::vector<ProvenanceRecord>& records);

  [[nodiscard]] const PromotionPolicy& policy() const noexcept { return policy_; }

 private:
  /// Sends `control` to every node; returns the first error (after trying
  /// all nodes) or ok.
  Status broadcast(const net::CanaryControl& control);

  std::shared_ptr<serve::RemoteCompileClient> client_;
  PromotionPolicy policy_;
};

}  // namespace autophase::learn
