#include "learn/promoter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "support/log.hpp"
#include "support/str.hpp"

namespace autophase::learn {

const char* promotion_decision_name(PromotionDecision decision) noexcept {
  switch (decision) {
    case PromotionDecision::kInsufficientData:
      return "insufficient-data";
    case PromotionDecision::kPromote:
      return "promote";
    case PromotionDecision::kRollback:
      return "rollback";
  }
  return "unknown";
}

namespace {

double relative_to(std::uint64_t value, std::uint64_t reference) {
  const double denom = static_cast<double>(std::max<std::uint64_t>(1, reference));
  return static_cast<double>(value) / denom;
}

}  // namespace

PromotionReport evaluate_promotion(const std::vector<ProvenanceRecord>& records,
                                   const std::string& incumbent_model,
                                   const std::string& canary_model,
                                   const PromotionPolicy& policy) {
  PromotionReport report;

  // Best-known cycles per program across BOTH cohorts: the shared yardstick
  // that makes the two cohorts' regrets comparable even though the incumbent
  // saw every program and the canary only its shadow slice.
  std::unordered_map<std::uint64_t, std::uint64_t> best;
  for (const auto& record : records) {
    if (record.model != incumbent_model && record.model != canary_model) continue;
    auto [it, inserted] = best.emplace(record.fingerprint, record.measured_cycles);
    if (!inserted && record.measured_cycles < it->second) it->second = record.measured_cycles;
  }

  double incumbent_regret = 0.0, incumbent_error = 0.0;
  double canary_regret = 0.0, canary_error = 0.0;
  for (const auto& record : records) {
    const bool is_canary = record.model == canary_model;
    if (!is_canary && record.model != incumbent_model) continue;
    const std::uint64_t best_known = best.at(record.fingerprint);
    const std::uint64_t excess =
        record.measured_cycles > best_known ? record.measured_cycles - best_known : 0;
    const double regret = relative_to(excess, best_known);
    const std::uint64_t miss = record.predicted_cycles > record.measured_cycles
                                   ? record.predicted_cycles - record.measured_cycles
                                   : record.measured_cycles - record.predicted_cycles;
    const double error = relative_to(miss, record.measured_cycles);
    if (is_canary) {
      ++report.canary.samples;
      canary_regret += regret;
      canary_error += error;
    } else {
      ++report.incumbent.samples;
      incumbent_regret += regret;
      incumbent_error += error;
    }
  }
  if (report.incumbent.samples > 0) {
    report.incumbent.mean_regret = incumbent_regret / static_cast<double>(report.incumbent.samples);
    report.incumbent.mean_cycle_error =
        incumbent_error / static_cast<double>(report.incumbent.samples);
  }
  if (report.canary.samples > 0) {
    report.canary.mean_regret = canary_regret / static_cast<double>(report.canary.samples);
    report.canary.mean_cycle_error = canary_error / static_cast<double>(report.canary.samples);
  }

  if (report.canary.samples < policy.min_canary_samples ||
      report.incumbent.samples < policy.min_incumbent_samples) {
    report.decision = PromotionDecision::kInsufficientData;
    report.reason = strf("need %zu canary / %zu incumbent samples, have %zu / %zu",
                         policy.min_canary_samples, policy.min_incumbent_samples,
                         report.canary.samples, report.incumbent.samples);
    return report;
  }

  const bool regret_ok =
      report.canary.mean_regret <= report.incumbent.mean_regret + policy.regret_margin;
  const bool calibration_ok = report.canary.mean_cycle_error <=
                              report.incumbent.mean_cycle_error + policy.calibration_slack;
  if (regret_ok && calibration_ok) {
    report.decision = PromotionDecision::kPromote;
    report.reason = strf("canary regret %.4f <= incumbent %.4f + margin %.4f, "
                         "cycle error %.4f within slack %.4f of %.4f",
                         report.canary.mean_regret, report.incumbent.mean_regret,
                         policy.regret_margin, report.canary.mean_cycle_error,
                         policy.calibration_slack, report.incumbent.mean_cycle_error);
  } else {
    report.decision = PromotionDecision::kRollback;
    report.reason =
        !regret_ok
            ? strf("canary regret %.4f exceeds incumbent %.4f + margin %.4f",
                   report.canary.mean_regret, report.incumbent.mean_regret, policy.regret_margin)
            : strf("canary cycle error %.4f exceeds incumbent %.4f + slack %.4f",
                   report.canary.mean_cycle_error, report.incumbent.mean_cycle_error,
                   policy.calibration_slack);
  }
  return report;
}

Promoter::Promoter(std::shared_ptr<serve::RemoteCompileClient> client, PromotionPolicy policy)
    : client_(std::move(client)), policy_(policy) {}

Status Promoter::broadcast(const net::CanaryControl& control) {
  Status first_error = Status::ok();
  for (std::size_t node = 0; node < client_->node_count(); ++node) {
    const Status status = client_->canary_control(node, control);
    if (!status.is_ok() && first_error.is_ok()) {
      first_error =
          Status::error(strf("node %zu: %s", node, status.message().c_str()));
    }
  }
  return first_error;
}

Status Promoter::start_canary(const std::string& base_model, const std::string& canary_model,
                              std::uint32_t canary_version, double fraction) {
  net::CanaryControl control;
  control.action = net::CanaryAction::kStart;
  control.model = base_model;
  control.canary_model = canary_model;
  control.canary_version = canary_version;
  control.fraction = fraction;
  const Status status = broadcast(control);
  if (status.is_ok()) {
    AP_CLOG(kInfo, "learn") << "canary started: " << canary_model << " v" << canary_version
                            << " shadowing " << base_model << " at fraction " << fraction;
  }
  return status;
}

Result<PromotionReport> Promoter::decide(std::size_t owner_node, const std::string& base_model,
                                         const std::string& canary_model,
                                         const serve::PolicyArtifact& canary,
                                         const std::vector<ProvenanceRecord>& records) {
  PromotionReport report = evaluate_promotion(records, base_model, canary_model, policy_);
  AP_CLOG(kInfo, "learn") << "promotion decision for " << base_model << " vs " << canary_model
                          << ": " << promotion_decision_name(report.decision) << " ("
                          << report.reason << ")";

  net::CanaryControl control;
  control.model = base_model;
  control.canary_model = canary_model;

  switch (report.decision) {
    case PromotionDecision::kInsufficientData:
      // Leave the split running; more traffic will settle it.
      return report;
    case PromotionDecision::kPromote: {
      // Publishing under the base name is the promotion: replication and
      // gossip make the new version the named default everywhere.
      auto published = client_->publish(owner_node, base_model, canary);
      if (!published.is_ok()) {
        return Status::error(strf("promotion publish failed: %s",
                                  published.status().message().c_str()));
      }
      report.promoted_version = published.value().version;
      control.action = net::CanaryAction::kPromoted;
      control.canary_version = published.value().version;
      const Status status = broadcast(control);
      if (!status.is_ok()) {
        return Status::error(strf("promoted as %s v%u but canary teardown failed: %s",
                                  base_model.c_str(), report.promoted_version,
                                  status.message().c_str()));
      }
      return report;
    }
    case PromotionDecision::kRollback: {
      control.action = net::CanaryAction::kRolledBack;
      const Status status = broadcast(control);
      if (!status.is_ok()) {
        return Status::error(
            strf("rollback teardown failed: %s", status.message().c_str()));
      }
      return report;
    }
  }
  return Status::error("unreachable promotion decision");
}

}  // namespace autophase::learn
