// Provenance records: the serving fleet's training signal. Every completed
// compile request leaves one record — the program (replayable bytes + its
// fingerprint), the objective, which model/version actually served it
// (including shadow-canary traffic), the decoded pass sequence, and the
// predicted-vs-measured outcome. Serving nodes append records to a bounded
// ProvenanceLog; a learn::Collector drains them over the wire (kProvenance)
// into a trainer process, which replays them into rl::Env-compatible
// trajectories by re-measuring through the shared runtime::EvalService.
//
// The record codec is versioned and golden-file pinned (tests/data/
// provenance_v1.bin): the wire format cannot drift silently, because a
// trainer decoding last week's checkpoint (or a node one release behind)
// must read exactly these bytes.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/compile_service.hpp"
#include "serve/serialization.hpp"
#include "support/status.hpp"

namespace autophase::learn {

/// Bumped whenever the record layout changes; readers reject newer versions.
///
/// v1  fingerprint, replayable module bytes, objective, served model/version,
///     canary flag, sequence, baseline/predicted/measured cycles, area.
/// v2  appends the request's objective weight vector (3 x f64 bit patterns),
///     so fine-tuning sees objective-conditioned traffic. v1 checkpoints
///     decode with an all-zero (inactive) weight vector.
inline constexpr std::uint32_t kProvenanceRecordVersion = 2;

/// One served request. `module_bytes` is the canonical serve::serialize_module
/// blob, so a trainer can reconstruct the exact program without access to the
/// client that submitted it; it is *not* validated here — deserialize_module
/// is the trust boundary when a record is replayed.
struct ProvenanceRecord {
  std::uint64_t fingerprint = 0;  // ir::module_fingerprint of the program
  std::string module_bytes;       // serve::serialize_module(program)
  serve::Objective objective = serve::Objective::kCycles;
  std::string model;          // model that actually served the request
  std::uint32_t version = 0;  // served version
  bool canary = false;        // shadow-canary traffic slice
  std::vector<int> sequence;  // Table-1 indices actually applied
  std::uint64_t baseline_cycles = 0;
  std::uint64_t predicted_cycles = 0;  // value-net estimate
  std::uint64_t measured_cycles = 0;   // EvalService ground truth
  double measured_area = 0.0;
  /// v2: the request's objective weight vector. All-zero (also what every v1
  /// record decodes to) means scalar traffic; active weights tag the record
  /// as Pareto traffic so a trainer can condition on — or filter by — the
  /// objective mix it is fine-tuning for.
  serve::ObjectiveWeights weights{};
};

/// Smallest possible encoded record (every string empty, empty sequence) —
/// the per-entry unit for count guards on untrusted payloads.
inline constexpr std::size_t kMinRecordBytes = 70;

void write_provenance_record(serve::ByteWriter& w, const ProvenanceRecord& record);
/// False on malformed input (reader error, unknown objective). `version` is
/// the batch's record version (from the checkpoint frame or the kProvenance
/// reply header): v1 records end before the weight vector, which stays
/// all-zero.
bool read_provenance_record(serve::ByteReader& r, ProvenanceRecord& record,
                            std::uint32_t version = kProvenanceRecordVersion);

/// Standalone framed checkpoint of a record batch (magic + record version +
/// length-prefixed payload + FNV-1a checksum, the same framing discipline as
/// artifacts and modules). This is the golden-file surface and what
/// ProvenanceLog::serialize round-trips.
std::string serialize_records(const std::vector<ProvenanceRecord>& records);
Result<std::vector<ProvenanceRecord>> deserialize_records(std::string_view bytes);

/// Bounded thread-safe FIFO of provenance records. Serving nodes append from
/// worker threads; a collector drains in arrival order. When full, append
/// drops the *oldest* record (fresh traffic is worth more to a trainer than
/// stale traffic) and counts the loss in dropped().
class ProvenanceLog {
 public:
  explicit ProvenanceLog(std::size_t capacity = 4096);

  void append(ProvenanceRecord record);
  /// Removes and returns up to `max` records, oldest first.
  std::vector<ProvenanceRecord> drain(std::size_t max);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Records overwritten before any collector drained them.
  [[nodiscard]] std::uint64_t dropped() const;

  // ---- Checkpointing (trainer restarts must not lose collected traffic) ----
  /// Serializes the current contents without draining.
  [[nodiscard]] std::string serialize() const;
  /// Appends a checkpoint's records (capacity eviction applies as usual).
  Status restore(std::string_view bytes);

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<ProvenanceRecord> records_;  // FIFO: drain from the front
  std::size_t head_ = 0;                   // first live record in records_
  std::uint64_t dropped_ = 0;
};

}  // namespace autophase::learn
