#include "learn/collector.hpp"

#include <unordered_set>
#include <utility>

#include "serve/module_codec.hpp"
#include "support/log.hpp"

namespace autophase::learn {

Collector::Collector(std::shared_ptr<serve::RemoteCompileClient> client,
                     std::size_t max_per_drain)
    : client_(std::move(client)), max_per_drain_(max_per_drain == 0 ? 1 : max_per_drain) {}

CollectReport Collector::collect(ProvenanceLog& into) {
  CollectReport report;
  for (std::size_t node = 0; node < client_->node_count(); ++node) {
    bool reached = false;
    std::uint64_t node_dropped = 0;
    std::uint64_t node_remaining = 0;
    // Drain this node to empty: each kProvenance exchange is bounded by
    // max_per_drain_, and `remaining` tells us whether to go again.
    for (;;) {
      auto batch = client_->drain_provenance(node, max_per_drain_);
      if (!batch.is_ok()) {
        if (!reached) ++report.nodes_failed;
        AP_CLOG(kWarn, "learn") << "provenance drain failed on node " << node << ": "
                                << batch.status().message();
        break;
      }
      if (!reached) {
        reached = true;
        ++report.nodes_reached;
      }
      report.fetched += batch.value().records.size();
      // `dropped` is a lifetime per-node counter: keep the freshest reply's
      // value rather than accumulating across iterations.
      node_dropped = batch.value().dropped;
      node_remaining = batch.value().remaining;
      for (auto& record : batch.value().records) into.append(std::move(record));
      if (batch.value().remaining == 0) break;
      if (batch.value().records.empty()) break;  // node refuses to shrink; bail
    }
    report.dropped += node_dropped;
    report.remaining += node_remaining;
  }
  return report;
}

std::vector<ReplayedRecord> replay_records(std::vector<ProvenanceRecord> records,
                                           runtime::EvalService& eval) {
  std::vector<ReplayedRecord> out;
  out.reserve(records.size());
  for (auto& record : records) {
    auto module = serve::deserialize_module(record.module_bytes);
    if (!module.is_ok()) {
      // Wire-originated bytes: a corrupt program is dropped, never trusted.
      AP_CLOG(kWarn, "learn") << "replay dropped record (fingerprint " << record.fingerprint
                              << "): " << module.status().message();
      continue;
    }
    ReplayedRecord replayed;
    replayed.module = std::move(module).value();
    replayed.baseline = eval.measure(*replayed.module);
    replayed.sequence_cycles =
        record.sequence.empty()
            ? replayed.baseline.cycles
            : eval.measure_sequence(*replayed.module, record.fingerprint, record.sequence).cycles;
    replayed.record = std::move(record);
    out.push_back(std::move(replayed));
  }
  return out;
}

std::vector<std::unique_ptr<ir::Module>> unique_programs(
    const std::vector<ProvenanceRecord>& records, std::size_t max_programs) {
  std::vector<std::unique_ptr<ir::Module>> out;
  std::unordered_set<std::uint64_t> seen;
  for (const auto& record : records) {
    if (max_programs != 0 && out.size() >= max_programs) break;
    if (!seen.insert(record.fingerprint).second) continue;
    auto module = serve::deserialize_module(record.module_bytes);
    if (!module.is_ok()) continue;
    out.push_back(std::move(module).value());
  }
  return out;
}

}  // namespace autophase::learn
