// learn::OnlineTrainer: fine-tunes an incumbent PolicyArtifact on live
// traffic. PPO is warm-started from the incumbent's nets (same shapes, same
// observation recipe via env_config_of), trained on a mixture of programs
// seen in served provenance and a held training corpus, and the result is
// packaged as a candidate artifact — the *canary* the Promoter publishes
// under a shadow split and judges on measured regret before it can become
// the named default.
#pragma once

#include <memory>
#include <vector>

#include "learn/provenance.hpp"
#include "rl/ppo.hpp"
#include "runtime/eval_service.hpp"
#include "serve/artifact.hpp"
#include "support/status.hpp"

namespace autophase::learn {

struct OnlineTrainerConfig {
  /// PPO settings for the fine-tune run. `hidden` is ignored — the network
  /// shapes are dictated by the incumbent's nets (warm start requires it).
  rl::PpoConfig ppo;
  /// Cap on distinct served programs mixed into the fine-tune corpus
  /// (first-seen order; 0 = unlimited). Keeps one hot program from drowning
  /// out the corpus half of the mixture.
  std::size_t max_traffic_programs = 32;
};

struct FineTuneReport {
  serve::PolicyArtifact canary;
  std::vector<rl::IterationStats> iterations;
  std::size_t traffic_programs = 0;  // distinct served programs used
  std::size_t corpus_programs = 0;
};

class OnlineTrainer {
 public:
  /// `eval` is the trainer's own measurement source (shared into the env and
  /// used for the canary's warm-up baselines); never a serving node's.
  OnlineTrainer(std::shared_ptr<runtime::EvalService> eval, OnlineTrainerConfig config = {});

  /// Warm-start + fine-tune + package. `traffic` is drained provenance (its
  /// distinct programs are decoded locally); `corpus` is the stable training
  /// set (may be empty when traffic alone suffices, and vice versa). The
  /// returned artifact is unnamed — ModelRegistry::publish assigns identity.
  Result<FineTuneReport> fine_tune(const serve::PolicyArtifact& incumbent,
                                   const std::vector<ProvenanceRecord>& traffic,
                                   const std::vector<const ir::Module*>& corpus);

 private:
  std::shared_ptr<runtime::EvalService> eval_;
  OnlineTrainerConfig config_;
};

}  // namespace autophase::learn
