#include "runtime/vec_env.hpp"

namespace autophase::runtime {

VecEnv::VecEnv(const EnvFactory& factory, VecEnvConfig config) : config_(config) {
  const std::size_t n = std::max<std::size_t>(1, config.num_envs);
  envs_.reserve(n);
  rngs_.reserve(n);
  // One SplitMix64 stream expands the base seed into two independent RNGs
  // per worker (env construction + policy sampling), in index order — the
  // streams depend only on (seed, worker index), never on thread count.
  SplitMix64 seeder(config.seed);
  for (std::size_t i = 0; i < n; ++i) {
    const Rng env_rng(seeder.next());
    rngs_.emplace_back(seeder.next());
    envs_.push_back(factory(i, env_rng));
  }
}

void VecEnv::for_each_env(const std::function<void(std::size_t)>& fn) {
  if (config_.pool != nullptr && config_.pool->size() > 1 && envs_.size() > 1) {
    config_.pool->parallel_for(envs_.size(), fn);
  } else {
    for (std::size_t i = 0; i < envs_.size(); ++i) fn(i);
  }
}

std::vector<std::vector<double>> VecEnv::reset() {
  std::vector<std::vector<double>> observations(envs_.size());
  for_each_env([&](std::size_t i) { observations[i] = envs_[i]->reset(); });
  return observations;
}

std::vector<rl::StepResult> VecEnv::step_batch(
    const std::vector<std::vector<std::size_t>>& actions) {
  std::vector<rl::StepResult> results(envs_.size());
  for_each_env([&](std::size_t i) {
    rl::StepResult r = envs_[i]->step(actions[i]);
    if (r.done) r.observation = envs_[i]->reset();
    results[i] = std::move(r);
  });
  return results;
}

std::size_t VecEnv::sample_count() const {
  std::size_t total = 0;
  for (const auto& env : envs_) total += env->sample_count();
  return total;
}

}  // namespace autophase::runtime
