// Vectorised environment execution: runs K Env instances (PhaseOrderEnv,
// MultiActionEnv, or anything else implementing rl::Env) with a reset /
// step_batch API, fanning the K steps out over a ThreadPool. Each worker gets
// a deterministic private RNG stream derived from one base seed, so the same
// seed produces the same trajectories no matter how many threads execute the
// batch — the parallel-rollout analogue of the paper's A3C/PPO workers.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rl/env.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace autophase::runtime {

struct VecEnvConfig {
  std::size_t num_envs = 4;
  std::uint64_t seed = 1;
  /// Worker pool for step_batch / reset; nullptr steps serially. Not owned.
  ThreadPool* pool = nullptr;
};

class VecEnv {
 public:
  /// factory(worker_index, rng) builds one private environment per worker;
  /// `rng` is that worker's deterministic construction stream (use it for
  /// program sampling or other per-env randomness).
  using EnvFactory = std::function<std::unique_ptr<rl::Env>(std::size_t, Rng)>;

  VecEnv(const EnvFactory& factory, VecEnvConfig config);

  [[nodiscard]] std::size_t size() const noexcept { return envs_.size(); }
  [[nodiscard]] rl::Env& env(std::size_t i) { return *envs_[i]; }
  [[nodiscard]] const rl::Env& env(std::size_t i) const { return *envs_[i]; }
  /// Per-worker policy-sampling stream; index-stable, thread-count agnostic.
  [[nodiscard]] Rng& worker_rng(std::size_t i) noexcept { return rngs_[i]; }

  /// Resets every environment; returns the K initial observations.
  std::vector<std::vector<double>> reset();

  /// Steps every environment with its own action. Finished environments are
  /// auto-reset: `done` stays true and the observation is the first one of
  /// the next episode (the convention PPO's rollout loop expects). Results
  /// land in per-index slots, so trajectories are bit-identical whether the
  /// batch runs on 1 thread or N.
  std::vector<rl::StepResult> step_batch(const std::vector<std::vector<std::size_t>>& actions);

  // Space passthroughs (all envs share one spec by construction).
  [[nodiscard]] std::size_t observation_size() const { return envs_[0]->observation_size(); }
  [[nodiscard]] std::size_t action_groups() const { return envs_[0]->action_groups(); }
  [[nodiscard]] std::size_t action_arity() const { return envs_[0]->action_arity(); }

  /// Total real simulator calls across all workers. Exact: each evaluation
  /// is attributed to exactly one env handle even when they share an
  /// EvalService.
  [[nodiscard]] std::size_t sample_count() const;

 private:
  void for_each_env(const std::function<void(std::size_t)>& fn);

  VecEnvConfig config_;
  std::vector<std::unique_ptr<rl::Env>> envs_;
  std::vector<Rng> rngs_;
};

}  // namespace autophase::runtime
