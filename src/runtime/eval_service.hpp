// Concurrent evaluation service: the one place the framework talks to the
// cycle profiler. Owns a sharded, striped-lock memoisation cache keyed by
// module fingerprint, with a secondary (program, pass-sequence) key so search
// baselines can skip re-cloning and re-applying passes entirely, and fans
// batched evaluations out over a ThreadPool. Per-shard stats keep the paper's
// "Samples / Program" metric exact under concurrency: each unique module is
// profiled (and counted) exactly once, no matter how many threads race on it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "hls/cycle_estimator.hpp"
#include "interp/interpreter.hpp"
#include "ir/module.hpp"
#include "support/thread_pool.hpp"

namespace autophase::runtime {

struct EvalServiceConfig {
  hls::ResourceConstraints constraints{};
  interp::InterpreterOptions interp_options{};
  /// Lock stripes; rounded up to a power of two.
  std::size_t shards = 16;
  /// Worker pool for evaluate_batch; nullptr evaluates serially. Not owned.
  ThreadPool* pool = nullptr;
};

struct EvalStats {
  std::size_t hits = 0;           // module-fingerprint cache hits
  std::size_t misses = 0;         // real simulator calls (the Samples metric)
  std::size_t sequence_hits = 0;  // (program, sequence) short-circuits
  std::size_t primed = 0;         // entries installed by prime(), not measured
  std::uint64_t eval_nanos = 0;   // wall time spent inside the profiler

  EvalStats& operator+=(const EvalStats& o) {
    hits += o.hits;
    misses += o.misses;
    sequence_hits += o.sequence_hits;
    primed += o.primed;
    eval_nanos += o.eval_nanos;
    return *this;
  }

  /// Fraction of lookups answered without a simulator call — the quantity
  /// cluster routing (consistent-hash by program fingerprint) protects.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t total = hits + sequence_hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits + sequence_hits) / static_cast<double>(total);
  }
};

/// Secondary cache key for an un-materialised evaluation request.
std::uint64_t sequence_key(std::uint64_t program_fingerprint,
                           std::span<const int> sequence) noexcept;

/// One profiler result, cached as a unit. `area` rides along with the cycle
/// count so objectives beyond raw cycles (e.g. the serving layer's
/// cycles x area latency-area product) never trigger a second simulation.
/// `ir_size` (instructions + blocks) is the third objective of Pareto
/// serving; it is a pure function of the module, recomputed on every
/// materialised lookup rather than trusted from the cache, so entries primed
/// from artifact baselines (which predate ir_size) still answer correctly.
struct Measure {
  std::uint64_t cycles = 0;
  double area = 0.0;
  std::uint64_t ir_size = 0;
};

class EvalService {
 public:
  explicit EvalService(EvalServiceConfig config = {});

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Memoised cycle count of a materialised module. `was_sample` (optional)
  /// reports whether THIS call ran the simulator — under contention exactly
  /// one caller per unique module gets `true`; the rest block until the
  /// result is ready and see a hit.
  std::uint64_t cycles(const ir::Module& m, bool* was_sample = nullptr);
  /// Full cached measurement (cycles + area) of a materialised module; same
  /// exactly-once semantics as cycles().
  Measure measure(const ir::Module& m, bool* was_sample = nullptr);
  /// Same, with the module fingerprint precomputed by the caller (the Pareto
  /// decode fingerprints every candidate for its tie-breaks anyway).
  Measure measure(const ir::Module& m, std::uint64_t fingerprint, bool* was_sample = nullptr);

  /// (program, sequence) evaluation through the secondary key: a sequence
  /// hit returns without cloning the program or applying a single pass.
  std::uint64_t evaluate_sequence(const ir::Module& program, const std::vector<int>& sequence,
                                  bool* was_sample = nullptr);
  /// Same, with the program fingerprint precomputed by the caller (search
  /// loops evaluate thousands of sequences against one immutable program).
  std::uint64_t evaluate_sequence(const ir::Module& program, std::uint64_t program_fingerprint,
                                  const std::vector<int>& sequence, bool* was_sample = nullptr);
  /// Measure variant of the secondary-key path.
  Measure measure_sequence(const ir::Module& program, std::uint64_t program_fingerprint,
                           const std::vector<int>& sequence, bool* was_sample = nullptr);

  struct BatchResult {
    std::vector<std::uint64_t> cycles;  // cycles[i] belongs to sequences[i]
    std::size_t new_samples = 0;        // simulator calls this batch triggered
  };

  /// Evaluates every sequence against `program`, fanned out over the pool
  /// (serial without one). Results are written to per-index slots, so the
  /// output — and every cache/sample count — is identical to the serial path
  /// regardless of thread count or scheduling.
  BatchResult evaluate_batch(const ir::Module& program,
                             std::span<const std::vector<int>> sequences);

  /// Installs an already-measured result under a module fingerprint without
  /// running the simulator (model warm-up: training-corpus baselines travel
  /// with the artifact and pre-fill the cache on import). Returns true when
  /// the entry was inserted; a fingerprint that is already cached — measured
  /// or pending — is left untouched, so priming can never overwrite a real
  /// measurement or race an evaluation in flight. Primed entries answer
  /// later lookups as ordinary hits and are never counted as samples.
  bool prime(std::uint64_t fingerprint, Measure measure);

  /// Fingerprint of everything that shapes a measurement (HLS resource
  /// constraints + interpreter budgets). Two services agreeing here produce
  /// identical Measures for identical modules, which is the precondition for
  /// shipping one service's results into another's cache (warm-up baselines
  /// are stamped with this and refused on mismatch).
  [[nodiscard]] std::uint64_t config_fingerprint() const noexcept;

  /// Real simulator calls so far (== stats().misses).
  [[nodiscard]] std::size_t samples() const;
  /// Aggregate over all shards.
  [[nodiscard]] EvalStats stats() const;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] EvalStats shard_stats(std::size_t shard) const;

  void set_pool(ThreadPool* pool) noexcept { pool_ = pool; }
  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_; }
  [[nodiscard]] const hls::ResourceConstraints& constraints() const noexcept {
    return config_.constraints;
  }

 private:
  /// Exactly-once evaluation slot: the inserting thread profiles the module
  /// and publishes the result; waiters block on the entry, not the shard.
  struct ModuleEntry {
    std::mutex mutex;
    std::condition_variable cv;
    bool ready = false;
    Measure measure;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<ModuleEntry>> modules;
    std::unordered_map<std::uint64_t, Measure> sequences;
    EvalStats stats;
  };

  Shard& shard_for(std::uint64_t key) noexcept;
  const Shard& shard_for(std::uint64_t key) const noexcept;
  Measure measure_by_fingerprint(std::uint64_t fingerprint, const ir::Module& m,
                                 bool* was_sample);

  EvalServiceConfig config_;
  std::vector<Shard> shards_;  // size is a power of two
  ThreadPool* pool_ = nullptr;
};

}  // namespace autophase::runtime
