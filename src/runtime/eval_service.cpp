#include "runtime/eval_service.hpp"

#include <atomic>
#include <bit>
#include <chrono>

#include "ir/clone.hpp"
#include "ir/printer.hpp"
#include "passes/pass.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace autophase::runtime {

namespace {

// Mirrors the legacy EvaluationCache policy: a program the simulator cannot
// execute is treated as unusably slow, like an HLS tool timeout.
constexpr std::uint64_t kFailurePenaltyCycles = 1ull << 40;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t sequence_key(std::uint64_t program_fingerprint,
                           std::span<const int> sequence) noexcept {
  std::uint64_t h = program_fingerprint;
  for (const int p : sequence) {
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)) + 1);
  }
  // Distinguish the empty sequence from the raw program fingerprint so the
  // two key spaces cannot collide trivially.
  return hash_combine(h, 0x5eedULL);
}

EvalService::EvalService(EvalServiceConfig config)
    : config_(config),
      shards_(round_up_pow2(std::max<std::size_t>(1, config.shards))),
      pool_(config.pool) {}

EvalService::Shard& EvalService::shard_for(std::uint64_t key) noexcept {
  // Fingerprints are FNV-mixed already; fold the high half in so shard count
  // changes never correlate with low-bit structure.
  return shards_[(key ^ (key >> 32)) & (shards_.size() - 1)];
}

const EvalService::Shard& EvalService::shard_for(std::uint64_t key) const noexcept {
  return shards_[(key ^ (key >> 32)) & (shards_.size() - 1)];
}

std::uint64_t EvalService::cycles(const ir::Module& m, bool* was_sample) {
  return measure_by_fingerprint(ir::module_fingerprint(m), m, was_sample).cycles;
}

Measure EvalService::measure(const ir::Module& m, bool* was_sample) {
  return measure_by_fingerprint(ir::module_fingerprint(m), m, was_sample);
}

Measure EvalService::measure(const ir::Module& m, std::uint64_t fingerprint, bool* was_sample) {
  return measure_by_fingerprint(fingerprint, m, was_sample);
}

Measure EvalService::measure_by_fingerprint(std::uint64_t fingerprint, const ir::Module& m,
                                            bool* was_sample) {
  if (was_sample) *was_sample = false;
  // ir_size is a pure structural count with the module in hand, recomputed
  // here instead of trusted from the cache: primed entries (artifact
  // baselines) and pre-ir_size cache state answer with the correct value.
  const std::uint64_t ir_size = ir::module_ir_size(m);
  Shard& shard = shard_for(fingerprint);
  std::shared_ptr<ModuleEntry> entry;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.modules.try_emplace(fingerprint);
    if (inserted) {
      it->second = std::make_shared<ModuleEntry>();
      owner = true;
      ++shard.stats.misses;
    } else {
      // A pending entry counts as a hit too: this caller triggers no
      // simulator run, it just waits for the one in flight.
      ++shard.stats.hits;
    }
    entry = it->second;
  }

  if (!owner) {
    std::unique_lock<std::mutex> lock(entry->mutex);
    entry->cv.wait(lock, [&] { return entry->ready; });
    Measure cached = entry->measure;
    cached.ir_size = ir_size;
    return cached;
  }

  if (was_sample) *was_sample = true;
  const auto publish = [&entry](Measure value) {
    {
      const std::lock_guard<std::mutex> lock(entry->mutex);
      entry->measure = value;
      entry->ready = true;
    }
    entry->cv.notify_all();
  };
  Measure measure{kFailurePenaltyCycles, 0.0, ir_size};
  std::uint64_t nanos = 0;
  try {
    const auto t0 = std::chrono::steady_clock::now();
    const auto est = hls::profile_cycles(m, config_.constraints, config_.interp_options);
    if (est.is_ok()) {
      measure = {est.value().cycles, est.value().area, ir_size};
    } else {
      AP_LOG_WARN << "evaluation failed (" << est.message() << "); assigning penalty cycles";
    }
    nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - t0)
            .count());
  } catch (...) {
    // The entry MUST be published even on failure (e.g. bad_alloc inside
    // the simulator): waiters block on `ready` and a pending entry that
    // never resolves would deadlock every future caller of this module.
    publish({kFailurePenaltyCycles, 0.0, ir_size});
    throw;
  }
  publish(measure);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats.eval_nanos += nanos;
  }
  return measure;
}

std::uint64_t EvalService::evaluate_sequence(const ir::Module& program,
                                             const std::vector<int>& sequence, bool* was_sample) {
  return evaluate_sequence(program, ir::module_fingerprint(program), sequence, was_sample);
}

std::uint64_t EvalService::evaluate_sequence(const ir::Module& program,
                                             std::uint64_t program_fingerprint,
                                             const std::vector<int>& sequence, bool* was_sample) {
  return measure_sequence(program, program_fingerprint, sequence, was_sample).cycles;
}

Measure EvalService::measure_sequence(const ir::Module& program,
                                      std::uint64_t program_fingerprint,
                                      const std::vector<int>& sequence, bool* was_sample) {
  const std::uint64_t key = sequence_key(program_fingerprint, sequence);
  Shard& shard = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.sequences.find(key);
    if (it != shard.sequences.end()) {
      ++shard.stats.sequence_hits;
      if (was_sample) *was_sample = false;
      return it->second;
    }
  }
  // Concurrent duplicates of one (program, sequence) pair each clone and
  // apply the passes, but the module-fingerprint layer below still runs the
  // simulator exactly once, so sample accounting stays exact.
  //
  // Rollout (CoW) clone: the shared program outlives this call, bodies only
  // deep-copy once the first pass runs (into the clone's arena), and for
  // the empty sequence the fingerprint below reads straight through to the
  // source — O(functions) allocations instead of O(instructions).
  auto working = ir::clone_module_for_rollout(program);
  passes::apply_pass_sequence(*working, sequence);
  const Measure measure = this->measure(*working, was_sample);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.sequences.emplace(key, measure);
  }
  return measure;
}

EvalService::BatchResult EvalService::evaluate_batch(const ir::Module& program,
                                                     std::span<const std::vector<int>> sequences) {
  BatchResult out;
  out.cycles.assign(sequences.size(), 0);
  if (sequences.empty()) return out;
  const std::uint64_t fingerprint = ir::module_fingerprint(program);
  std::atomic<std::size_t> new_samples{0};
  const auto eval_one = [&](std::size_t i) {
    bool sampled = false;
    out.cycles[i] = evaluate_sequence(program, fingerprint, sequences[i], &sampled);
    if (sampled) new_samples.fetch_add(1, std::memory_order_relaxed);
  };
  if (pool_ != nullptr && pool_->size() > 1 && sequences.size() > 1) {
    pool_->parallel_for(sequences.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < sequences.size(); ++i) eval_one(i);
  }
  out.new_samples = new_samples.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t EvalService::config_fingerprint() const noexcept {
  std::uint64_t h = 0xa0707a5ecf9ULL;  // arbitrary seed
  h = hash_combine(h, std::bit_cast<std::uint64_t>(config_.constraints.clock_period_ns));
  h = hash_combine(h, static_cast<std::uint64_t>(config_.constraints.memory_ports));
  h = hash_combine(h, static_cast<std::uint64_t>(config_.constraints.multipliers));
  h = hash_combine(h, static_cast<std::uint64_t>(config_.constraints.dividers));
  h = hash_combine(h, config_.interp_options.max_instructions);
  h = hash_combine(h, static_cast<std::uint64_t>(config_.interp_options.max_call_depth));
  h = hash_combine(h, static_cast<std::uint64_t>(config_.interp_options.memory_bytes));
  return h;
}

bool EvalService::prime(std::uint64_t fingerprint, Measure measure) {
  Shard& shard = shard_for(fingerprint);
  auto entry = std::make_shared<ModuleEntry>();
  entry->measure = measure;
  entry->ready = true;  // never pending: a primed entry has no owner thread
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.modules.try_emplace(fingerprint, std::move(entry));
  if (inserted) ++shard.stats.primed;
  return inserted;
}

std::size_t EvalService::samples() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.stats.misses;
  }
  return total;
}

EvalStats EvalService::stats() const {
  EvalStats total;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.stats;
  }
  return total;
}

EvalStats EvalService::shard_stats(std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(shards_[shard].mutex);
  return shards_[shard].stats;
}

}  // namespace autophase::runtime
