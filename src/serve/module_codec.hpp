// Binary serialization for ir::Module, the missing half of the serving wire
// protocol: PolicyArtifact blobs already cross processes, but a compile
// request carries a *program*, and the IR has a printer and no parser. The
// codec is canonical (serialize-of-deserialize is byte-identical) and
// structure-preserving — names, block order, and function attributes all
// round-trip — so print_module(decoded) == print_module(original) and the
// module fingerprint (the EvalService cache key) survives the network hop.
// Decoding is a trust boundary: every count, index, and operand type is
// validated, and the result is run through the IR verifier before release.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "ir/module.hpp"
#include "serve/serialization.hpp"
#include "support/status.hpp"

namespace autophase::serve {

/// Appends the module payload (no framing; compose inside larger messages).
void write_module(ByteWriter& w, const ir::Module& module);
/// Reads one module payload written by write_module.
Result<std::unique_ptr<ir::Module>> read_module(ByteReader& r);

/// Standalone blob framed like the artifact format: magic + format version +
/// length-prefixed payload + FNV-1a checksum.
std::string serialize_module(const ir::Module& module);
Result<std::unique_ptr<ir::Module>> deserialize_module(std::string_view bytes);

}  // namespace autophase::serve
