#include "serve/module_codec.hpp"

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/verifier.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"

namespace autophase::serve {

namespace {

constexpr char kModuleMagic[4] = {'A', 'P', 'M', 'B'};  // AutoPhase Module Blob
constexpr std::uint32_t kModuleFormatVersion = 1;

// The numeric values of ir::Opcode / ir::ICmpPred are part of the wire
// format; reordering either enum requires a kModuleFormatVersion bump.
constexpr std::uint8_t kMaxOpcode = static_cast<std::uint8_t>(ir::Opcode::kUnreachable);
constexpr std::uint8_t kMaxPred = static_cast<std::uint8_t>(ir::ICmpPred::kUge);

enum RefTag : std::uint8_t {
  kRefConst = 0,
  kRefUndef = 1,
  kRefArg = 2,
  kRefGlobal = 3,
  kRefInst = 4,
};
constexpr std::uint8_t kMaxRefTag = kRefInst;

constexpr int kMaxTypeDepth = 16;

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

void write_type(ByteWriter& w, const ir::Type* type) {
  w.u8(static_cast<std::uint8_t>(type->kind()));
  switch (type->kind()) {
    case ir::TypeKind::kVoid: break;
    case ir::TypeKind::kInt: w.u8(static_cast<std::uint8_t>(type->bits())); break;
    case ir::TypeKind::kPointer: write_type(w, type->pointee()); break;
  }
}

ir::Type* read_type(ByteReader& r, int depth = 0) {
  if (depth > kMaxTypeDepth) return nullptr;
  switch (r.u8()) {
    case static_cast<std::uint8_t>(ir::TypeKind::kVoid): return ir::Type::void_ty();
    case static_cast<std::uint8_t>(ir::TypeKind::kInt): {
      const std::uint8_t bits = r.u8();
      if (bits != 1 && bits != 8 && bits != 16 && bits != 32 && bits != 64) return nullptr;
      return ir::Type::int_ty(bits);
    }
    case static_cast<std::uint8_t>(ir::TypeKind::kPointer): {
      ir::Type* pointee = read_type(r, depth + 1);
      return pointee == nullptr ? nullptr : ir::Type::pointer_to(pointee);
    }
    default: return nullptr;
  }
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// Per-function value numbering: arguments and instructions by position.
struct ValueIndex {
  std::unordered_map<const ir::Value*, std::uint32_t> args;
  std::unordered_map<const ir::Value*, std::uint32_t> insts;
};

void write_ref(ByteWriter& w, const ir::Value* v,
               const std::unordered_map<const ir::Value*, std::uint32_t>& globals,
               const ValueIndex& index) {
  switch (v->value_kind()) {
    case ir::ValueKind::kConstantInt: {
      w.u8(kRefConst);
      write_type(w, v->type());
      w.u64(std::bit_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<const ir::ConstantInt*>(v)->value())));
      return;
    }
    case ir::ValueKind::kUndef:
      w.u8(kRefUndef);
      write_type(w, v->type());
      return;
    case ir::ValueKind::kArgument:
      w.u8(kRefArg);
      w.u32(index.args.at(v));
      return;
    case ir::ValueKind::kGlobalVariable:
      w.u8(kRefGlobal);
      w.u32(globals.at(v));
      return;
    case ir::ValueKind::kInstruction:
      w.u8(kRefInst);
      w.u32(index.insts.at(v));
      return;
  }
}

void write_instruction(ByteWriter& w, const ir::Instruction* inst,
                       const std::unordered_map<const ir::Value*, std::uint32_t>& globals,
                       const std::unordered_map<const ir::Function*, std::uint32_t>& functions,
                       const std::unordered_map<const ir::BasicBlock*, std::uint32_t>& blocks,
                       const ValueIndex& index) {
  const auto ref = [&](const ir::Value* v) { write_ref(w, v, globals, index); };
  w.u8(static_cast<std::uint8_t>(inst->opcode()));
  w.str(inst->name());
  write_type(w, inst->type());
  switch (inst->opcode()) {
    case ir::Opcode::kICmp:
      w.u8(static_cast<std::uint8_t>(inst->icmp_pred()));
      ref(inst->operand(0));
      ref(inst->operand(1));
      break;
    case ir::Opcode::kZExt:
    case ir::Opcode::kSExt:
    case ir::Opcode::kTrunc:
    case ir::Opcode::kBitCast:
    case ir::Opcode::kLoad:
      ref(inst->operand(0));
      break;
    case ir::Opcode::kPhi:
      w.u64(inst->incoming_count());
      for (std::size_t i = 0; i < inst->incoming_count(); ++i) {
        ref(inst->incoming_value(i));
        w.u32(blocks.at(inst->incoming_block(i)));
      }
      break;
    case ir::Opcode::kAlloca:
      write_type(w, inst->allocated_type());
      w.u64(inst->alloca_count());
      break;
    case ir::Opcode::kCall:
      w.u32(functions.at(inst->callee()));
      w.u64(inst->operand_count());
      for (const ir::Value* arg : inst->operands()) ref(arg);
      break;
    case ir::Opcode::kBr: w.u32(blocks.at(inst->successor(0))); break;
    case ir::Opcode::kCondBr:
      ref(inst->operand(0));
      w.u32(blocks.at(inst->successor(0)));
      w.u32(blocks.at(inst->successor(1)));
      break;
    case ir::Opcode::kSwitch:
      ref(inst->operand(0));
      w.u32(blocks.at(inst->successor(0)));
      w.u64(inst->switch_case_count());
      for (std::size_t c = 0; c < inst->switch_case_count(); ++c) {
        const auto* value = static_cast<const ir::ConstantInt*>(inst->operand(1 + c));
        write_type(w, value->type());
        w.u64(std::bit_cast<std::uint64_t>(value->value()));
        w.u32(blocks.at(inst->successor(1 + c)));
      }
      break;
    case ir::Opcode::kRet:
      w.u8(inst->operand_count() > 0 ? 1 : 0);
      if (inst->operand_count() > 0) ref(inst->operand(0));
      break;
    case ir::Opcode::kUnreachable: break;
    default:
      // Binary ops, select, store, gep, memset, memcpy: a plain operand list
      // whose length is fixed by the opcode.
      for (const ir::Value* operand : inst->operands()) ref(operand);
      break;
  }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct RefRec {
  std::uint8_t tag = kRefUndef;
  ir::Type* type = nullptr;    // const / undef
  std::int64_t value = 0;      // const
  std::uint32_t index = 0;     // arg / global / inst
};

struct CaseRec {
  ir::Type* type = nullptr;
  std::int64_t value = 0;
  std::uint32_t block = 0;
};

struct InstRec {
  ir::Opcode op = ir::Opcode::kUnreachable;
  std::string name;
  ir::Type* type = nullptr;  // result type (placeholder type for forward refs)
  std::uint32_t block = 0;   // owning block index
  std::vector<RefRec> operands;
  std::vector<std::pair<RefRec, std::uint32_t>> incoming;  // phi
  std::vector<CaseRec> cases;                              // switch
  std::vector<std::uint32_t> successors;                   // br/condbr/switch default
  ir::ICmpPred pred = ir::ICmpPred::kEq;
  std::uint32_t callee = 0;
  ir::Type* alloca_type = nullptr;
  std::uint64_t alloca_count = 0;
  bool has_ret_value = false;
};

/// How many fixed operand refs each non-special opcode carries.
int plain_operand_count(ir::Opcode op) {
  if (ir::opcode_is_binary(op)) return 2;
  switch (op) {
    case ir::Opcode::kSelect: return 3;
    case ir::Opcode::kStore: return 2;
    case ir::Opcode::kGep: return 2;
    case ir::Opcode::kMemSet: return 3;
    case ir::Opcode::kMemCpy: return 3;
    default: return -1;
  }
}

class ModuleDecoder {
 public:
  explicit ModuleDecoder(ByteReader& r) : r_(r) {}

  Result<std::unique_ptr<ir::Module>> run() {
    auto module = std::make_unique<ir::Module>(r_.str());

    const std::uint64_t nglobals = r_.u64();
    if (!r_.ok() || nglobals > r_.remaining()) return corrupt("global count");
    for (std::uint64_t g = 0; g < nglobals; ++g) {
      if (const Status s = read_global(*module); !s.is_ok()) return s;
    }
    globals_cache_ = module->globals();

    const std::uint64_t nfuncs = r_.u64();
    if (!r_.ok() || nfuncs > r_.remaining()) return corrupt("function count");
    for (std::uint64_t f = 0; f < nfuncs; ++f) {
      if (const Status s = read_signature(*module); !s.is_ok()) return s;
    }
    for (std::uint64_t f = 0; f < nfuncs; ++f) {
      if (const Status s = read_body(module->function(f)); !s.is_ok()) return s;
    }
    if (!r_.ok()) return corrupt("truncated payload");
    if (const Status s = ir::verify_module(*module); !s.is_ok()) {
      return Status::error("module blob decodes to ill-formed IR: " + s.message());
    }
    return module;
  }

 private:
  static Status corrupt(const char* what) {
    return Status::error(strf("module blob: corrupt %s", what));
  }

  Status read_global(ir::Module& module) {
    std::string name = r_.str();
    ir::Type* element = read_type(r_);
    const std::uint64_t count = r_.u64();
    const bool constant_data = r_.u8() != 0;
    const std::uint64_t ninit = r_.u64();
    if (!r_.ok() || element == nullptr || element->is_void() || count == 0 ||
        count > (1u << 28) || ninit > count || ninit > r_.remaining() / 8) {
      return corrupt("global");
    }
    std::vector<std::int64_t> init;
    init.reserve(ninit);
    for (std::uint64_t i = 0; i < ninit; ++i) {
      init.push_back(std::bit_cast<std::int64_t>(r_.u64()));
    }
    module.create_global(element, count, std::move(name), std::move(init), constant_data);
    return Status::ok();
  }

  Status read_signature(ir::Module& module) {
    std::string name = r_.str();
    ir::Type* ret = read_type(r_);
    const std::uint64_t nargs = r_.u64();
    if (!r_.ok() || ret == nullptr || nargs > (1u << 16)) return corrupt("function signature");
    std::vector<ir::Type*> param_types;
    std::vector<std::string> param_names;
    for (std::uint64_t a = 0; a < nargs; ++a) {
      ir::Type* t = read_type(r_);
      if (t == nullptr || t->is_void()) return corrupt("parameter type");
      param_types.push_back(t);
      param_names.push_back(r_.str());
    }
    const std::uint8_t attrs = r_.u8();
    if (!r_.ok() || attrs > 0b111) return corrupt("function attributes");
    ir::Function* f = module.create_function(std::move(name), ret, param_types, param_names);
    f->attrs().readnone = (attrs & 1) != 0;
    f->attrs().readonly = (attrs & 2) != 0;
    f->attrs().nounwind = (attrs & 4) != 0;
    return Status::ok();
  }

  RefRec read_ref() {
    RefRec ref;
    ref.tag = r_.u8();
    if (ref.tag > kMaxRefTag) {
      r_ok_ = false;
      return ref;
    }
    switch (ref.tag) {
      case kRefConst:
        ref.type = read_type(r_);
        ref.value = std::bit_cast<std::int64_t>(r_.u64());
        if (ref.type == nullptr || !ref.type->is_int()) r_ok_ = false;
        break;
      case kRefUndef:
        ref.type = read_type(r_);
        if (ref.type == nullptr) r_ok_ = false;
        break;
      default: ref.index = r_.u32(); break;
    }
    return ref;
  }

  Status read_body(ir::Function* func) {
    const std::uint64_t nblocks = r_.u64();
    if (!r_.ok() || nblocks > r_.remaining()) return corrupt("block count");

    // Pass A: read every record first — forward references (phis, branches
    // to later blocks, uses of later definitions) need the full table before
    // any instruction object exists.
    std::vector<std::string> block_names;
    std::vector<InstRec> recs;
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      block_names.push_back(r_.str());
      const std::uint64_t ninsts = r_.u64();
      if (!r_.ok() || ninsts > r_.remaining()) return corrupt("instruction count");
      for (std::uint64_t i = 0; i < ninsts; ++i) {
        InstRec rec;
        rec.block = static_cast<std::uint32_t>(b);
        if (const Status s = read_record(rec); !s.is_ok()) return s;
        recs.push_back(std::move(rec));
      }
    }
    // Pass B: create blocks, then instructions in order. Operands referencing
    // a later instruction get a typed undef placeholder; everything else
    // resolves directly. Factory type preconditions are re-validated here
    // because asserts are compiled out of release servers.
    std::vector<ir::BasicBlock*> blocks;
    for (auto& name : block_names) blocks.push_back(func->create_block(std::move(name)));
    std::vector<ir::Instruction*> created(recs.size(), nullptr);
    // (instruction, operand slot, record index) triples to rebind in pass C.
    std::vector<std::tuple<std::size_t, std::size_t, std::uint32_t>> fixups;

    for (std::size_t i = 0; i < recs.size(); ++i) {
      const InstRec& rec = recs[i];
      auto owned = build_instruction(func, rec, recs, blocks, created, i, fixups);
      if (owned == nullptr) return corrupt(strf("instruction %zu", i).c_str());
      if (owned->type() != rec.type) return corrupt("instruction result type");
      created[i] = blocks[rec.block]->push_back(std::move(owned));
    }

    // Pass C: swap placeholders for the real (now existing) definitions and
    // attach phi incomings.
    for (const auto& [inst, slot, target] : fixups) {
      created[inst]->set_operand(slot, created[target]);
    }
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (recs[i].op != ir::Opcode::kPhi) continue;
      for (const auto& [ref, block] : recs[i].incoming) {
        ir::Value* value = resolve_final(ref, func, recs, created);
        if (value == nullptr || value->type() != created[i]->type()) {
          return corrupt("phi incoming");
        }
        created[i]->add_incoming(value, blocks[block]);
      }
    }
    return Status::ok();
  }

  Status read_record(InstRec& rec) {
    const std::uint8_t op = r_.u8();
    if (!r_.ok() || op > kMaxOpcode) return corrupt("opcode");
    rec.op = static_cast<ir::Opcode>(op);
    rec.name = r_.str();
    rec.type = read_type(r_);
    if (!r_.ok() || rec.type == nullptr) return corrupt("instruction type");
    // Every loop below both divides the count guard by the smallest possible
    // element encoding and stops on a failed reader: a corrupt count must
    // cost at most the payload's own bytes, never count-many iterations or
    // a count-sized allocation (the reader returns zeros without consuming
    // once exhausted, so "the reads will fail eventually" bounds nothing).
    const auto take_refs = [&](std::uint64_t n) {
      for (std::uint64_t i = 0; i < n && r_.ok() && r_ok_; ++i) {
        rec.operands.push_back(read_ref());
      }
    };
    switch (rec.op) {
      case ir::Opcode::kICmp: {
        const std::uint8_t pred = r_.u8();
        if (pred > kMaxPred) return corrupt("icmp predicate");
        rec.pred = static_cast<ir::ICmpPred>(pred);
        take_refs(2);
        break;
      }
      case ir::Opcode::kZExt:
      case ir::Opcode::kSExt:
      case ir::Opcode::kTrunc:
      case ir::Opcode::kBitCast:
      case ir::Opcode::kLoad: take_refs(1); break;
      case ir::Opcode::kPhi: {
        const std::uint64_t n = r_.u64();
        // Each incoming is at least a 2-byte ref + 4-byte block index.
        if (!r_.ok() || n > r_.remaining() / 6) return corrupt("phi arity");
        for (std::uint64_t k = 0; k < n && r_.ok() && r_ok_; ++k) {
          RefRec ref = read_ref();
          rec.incoming.emplace_back(ref, r_.u32());
        }
        break;
      }
      case ir::Opcode::kAlloca:
        rec.alloca_type = read_type(r_);
        rec.alloca_count = r_.u64();
        if (rec.alloca_type == nullptr || rec.alloca_type->is_void() || rec.alloca_count == 0 ||
            rec.alloca_count > (1u << 28)) {
          return corrupt("alloca");
        }
        break;
      case ir::Opcode::kCall: {
        rec.callee = r_.u32();
        const std::uint64_t n = r_.u64();
        // The smallest encodable ref (undef + one-byte type) is 2 bytes.
        if (!r_.ok() || n > r_.remaining() / 2) return corrupt("call arity");
        take_refs(n);
        break;
      }
      case ir::Opcode::kBr: rec.successors.push_back(r_.u32()); break;
      case ir::Opcode::kCondBr:
        take_refs(1);
        rec.successors.push_back(r_.u32());
        rec.successors.push_back(r_.u32());
        break;
      case ir::Opcode::kSwitch: {
        take_refs(1);
        rec.successors.push_back(r_.u32());
        const std::uint64_t n = r_.u64();
        // Each case is a type (>= 2 bytes for int), an i64, and a block u32.
        if (!r_.ok() || n > r_.remaining() / 14) return corrupt("switch cases");
        for (std::uint64_t k = 0; k < n && r_.ok(); ++k) {
          CaseRec c;
          c.type = read_type(r_);
          c.value = std::bit_cast<std::int64_t>(r_.u64());
          c.block = r_.u32();
          if (c.type == nullptr || !c.type->is_int()) return corrupt("switch case");
          rec.cases.push_back(c);
        }
        break;
      }
      case ir::Opcode::kRet:
        rec.has_ret_value = r_.u8() != 0;
        if (rec.has_ret_value) take_refs(1);
        break;
      case ir::Opcode::kUnreachable: break;
      default: {
        const int n = plain_operand_count(rec.op);
        if (n < 0) return corrupt("opcode");
        take_refs(n);
        break;
      }
    }
    if (!r_.ok() || !r_ok_) return corrupt("instruction record");
    return Status::ok();
  }

  /// Type a reference will have once resolved (placeholders included).
  ir::Type* ref_type(const RefRec& ref, const ir::Function* func,
                     const std::vector<InstRec>& recs) const {
    switch (ref.tag) {
      case kRefConst:
      case kRefUndef: return ref.type;
      case kRefArg: return ref.index < func->arg_count() ? func->arg(ref.index)->type() : nullptr;
      case kRefGlobal:
        return ref.index < globals_().size() ? globals_()[ref.index]->type() : nullptr;
      case kRefInst: return ref.index < recs.size() ? recs[ref.index].type : nullptr;
      default: return nullptr;
    }
  }

  /// Resolves a reference during pass B. Forward instruction references
  /// yield a typed undef placeholder and log a fixup.
  ir::Value* resolve(const RefRec& ref, ir::Function* func, const std::vector<InstRec>& recs,
                     const std::vector<ir::Instruction*>& created, std::size_t self,
                     std::size_t slot,
                     std::vector<std::tuple<std::size_t, std::size_t, std::uint32_t>>& fixups) {
    switch (ref.tag) {
      case kRefConst: return func->parent()->get_int(ref.type, ref.value);
      case kRefUndef: return func->parent()->get_undef(ref.type);
      case kRefArg: return ref.index < func->arg_count() ? func->arg(ref.index) : nullptr;
      case kRefGlobal:
        return ref.index < globals_().size() ? globals_()[ref.index] : nullptr;
      case kRefInst:
        if (ref.index >= recs.size()) return nullptr;
        if (created[ref.index] != nullptr) return created[ref.index];
        fixups.emplace_back(self, slot, ref.index);
        return func->parent()->get_undef(recs[ref.index].type);
      default: return nullptr;
    }
  }

  /// Resolution after every instruction exists (phi incomings).
  static ir::Value* resolve_final(const RefRec& ref, ir::Function* func,
                                  const std::vector<InstRec>& recs,
                                  const std::vector<ir::Instruction*>& created) {
    switch (ref.tag) {
      case kRefConst: return func->parent()->get_int(ref.type, ref.value);
      case kRefUndef: return func->parent()->get_undef(ref.type);
      case kRefArg: return ref.index < func->arg_count() ? func->arg(ref.index) : nullptr;
      case kRefGlobal: {
        const ir::Module* m = func->parent();
        return ref.index < m->global_count() ? m->global(ref.index) : nullptr;
      }
      case kRefInst: return ref.index < recs.size() ? created[ref.index] : nullptr;
      default: return nullptr;
    }
  }

  std::unique_ptr<ir::Instruction> build_instruction(
      ir::Function* func, const InstRec& rec, const std::vector<InstRec>& recs,
      const std::vector<ir::BasicBlock*>& blocks, const std::vector<ir::Instruction*>& created,
      std::size_t self,
      std::vector<std::tuple<std::size_t, std::size_t, std::uint32_t>>& fixups) {
    const auto operand = [&](std::size_t slot) -> ir::Value* {
      return slot < rec.operands.size()
                 ? resolve(rec.operands[slot], func, recs, created, self, slot, fixups)
                 : nullptr;
    };
    const auto otype = [&](std::size_t slot) -> ir::Type* {
      return slot < rec.operands.size() ? ref_type(rec.operands[slot], func, recs) : nullptr;
    };
    const auto block = [&](std::size_t i) -> ir::BasicBlock* {
      return i < rec.successors.size() && rec.successors[i] < blocks.size()
                 ? blocks[rec.successors[i]]
                 : nullptr;
    };

    if (ir::opcode_is_binary(rec.op)) {
      ir::Type* t = otype(0);
      if (t == nullptr || !t->is_int() || t != otype(1) || t != rec.type) return nullptr;
      return ir::Instruction::binary(rec.op, operand(0), operand(1), rec.name);
    }
    switch (rec.op) {
      case ir::Opcode::kICmp: {
        ir::Type* t = otype(0);
        if (t == nullptr || t != otype(1) || rec.type != ir::Type::i1()) return nullptr;
        return ir::Instruction::icmp(rec.pred, operand(0), operand(1), rec.name);
      }
      case ir::Opcode::kZExt:
      case ir::Opcode::kSExt:
      case ir::Opcode::kTrunc:
      case ir::Opcode::kBitCast: {
        if (otype(0) == nullptr) return nullptr;
        return ir::Instruction::cast(rec.op, operand(0), rec.type, rec.name);
      }
      case ir::Opcode::kSelect: {
        if (otype(0) != ir::Type::i1() || otype(1) == nullptr || otype(1) != otype(2) ||
            otype(1) != rec.type) {
          return nullptr;
        }
        return ir::Instruction::select(operand(0), operand(1), operand(2), rec.name);
      }
      case ir::Opcode::kPhi: return ir::Instruction::phi(rec.type, rec.name);
      case ir::Opcode::kAlloca:
        return ir::Instruction::alloca_inst(rec.alloca_type,
                                            static_cast<std::size_t>(rec.alloca_count), rec.name);
      case ir::Opcode::kLoad: {
        ir::Type* t = otype(0);
        if (t == nullptr || !t->is_pointer() || t->pointee() != rec.type) return nullptr;
        return ir::Instruction::load(operand(0), rec.name);
      }
      case ir::Opcode::kStore: {
        ir::Type* p = otype(1);
        if (otype(0) == nullptr || p == nullptr || !p->is_pointer() ||
            p->pointee() != otype(0)) {
          return nullptr;
        }
        return ir::Instruction::store(operand(0), operand(1));
      }
      case ir::Opcode::kGep: {
        ir::Type* p = otype(0);
        ir::Type* idx = otype(1);
        if (p == nullptr || !p->is_pointer() || idx == nullptr || !idx->is_int()) return nullptr;
        return ir::Instruction::gep(operand(0), operand(1), rec.name);
      }
      case ir::Opcode::kMemSet: {
        ir::Type* d = otype(0);
        if (d == nullptr || !d->is_pointer() || otype(1) == nullptr || otype(2) == nullptr) {
          return nullptr;
        }
        return ir::Instruction::mem_set(operand(0), operand(1), operand(2));
      }
      case ir::Opcode::kMemCpy: {
        ir::Type* d = otype(0);
        ir::Type* s = otype(1);
        if (d == nullptr || !d->is_pointer() || s == nullptr || !s->is_pointer() ||
            otype(2) == nullptr) {
          return nullptr;
        }
        return ir::Instruction::mem_cpy(operand(0), operand(1), operand(2));
      }
      case ir::Opcode::kCall: {
        const ir::Module* m = func->parent();
        if (rec.callee >= m->function_count()) return nullptr;
        ir::Function* callee = m->function(rec.callee);
        if (rec.operands.size() != callee->arg_count()) return nullptr;
        std::vector<ir::Value*> args;
        for (std::size_t a = 0; a < rec.operands.size(); ++a) {
          ir::Value* v = operand(a);
          if (v == nullptr) return nullptr;
          args.push_back(v);
        }
        return ir::Instruction::call(callee, std::move(args), rec.name);
      }
      case ir::Opcode::kBr: {
        if (block(0) == nullptr) return nullptr;
        return ir::Instruction::br(block(0));
      }
      case ir::Opcode::kCondBr: {
        if (otype(0) != ir::Type::i1() || block(0) == nullptr || block(1) == nullptr) {
          return nullptr;
        }
        return ir::Instruction::cond_br(operand(0), block(0), block(1));
      }
      case ir::Opcode::kSwitch: {
        ir::Type* t = otype(0);
        if (t == nullptr || !t->is_int() || block(0) == nullptr) return nullptr;
        auto inst = ir::Instruction::switch_inst(operand(0), block(0));
        for (const CaseRec& c : rec.cases) {
          if (c.block >= blocks.size()) return nullptr;
          inst->add_switch_case(func->parent()->get_int(c.type, c.value), blocks[c.block]);
        }
        return inst;
      }
      case ir::Opcode::kRet: {
        if (!rec.has_ret_value) return ir::Instruction::ret(nullptr);
        if (otype(0) == nullptr) return nullptr;
        return ir::Instruction::ret(operand(0));
      }
      case ir::Opcode::kUnreachable: return ir::Instruction::unreachable();
      default: return nullptr;
    }
  }

  [[nodiscard]] const std::vector<ir::GlobalVariable*>& globals_() const {
    return globals_cache_;
  }

  ByteReader& r_;
  bool r_ok_ = true;
  std::vector<ir::GlobalVariable*> globals_cache_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

void write_module(ByteWriter& w, const ir::Module& module) {
  w.str(module.name());

  std::unordered_map<const ir::Value*, std::uint32_t> globals;
  w.u64(module.global_count());
  for (std::size_t g = 0; g < module.global_count(); ++g) {
    const ir::GlobalVariable* global = module.global(g);
    globals[global] = static_cast<std::uint32_t>(g);
    w.str(global->name());
    write_type(w, global->element_type());
    w.u64(global->element_count());
    w.u8(global->is_constant_data() ? 1 : 0);
    w.u64(global->init().size());
    for (const std::int64_t v : global->init()) w.u64(std::bit_cast<std::uint64_t>(v));
  }

  std::unordered_map<const ir::Function*, std::uint32_t> functions;
  w.u64(module.function_count());
  for (std::size_t f = 0; f < module.function_count(); ++f) {
    const ir::Function* func = module.function(f);
    functions[func] = static_cast<std::uint32_t>(f);
    w.str(func->name());
    write_type(w, func->return_type());
    w.u64(func->arg_count());
    for (std::size_t a = 0; a < func->arg_count(); ++a) {
      write_type(w, func->arg(a)->type());
      w.str(func->arg(a)->name());
    }
    const ir::FunctionAttrs& attrs = func->attrs();
    w.u8(static_cast<std::uint8_t>((attrs.readnone ? 1 : 0) | (attrs.readonly ? 2 : 0) |
                                   (attrs.nounwind ? 4 : 0)));
  }

  for (std::size_t f = 0; f < module.function_count(); ++f) {
    // const_cast: blocks()/instructions() are read-only snapshots; the IR
    // API lacks const overloads (same convention as ir::clone_module).
    ir::Function* func = const_cast<ir::Function*>(module.function(f));
    ValueIndex index;
    for (std::size_t a = 0; a < func->arg_count(); ++a) {
      index.args[func->arg(a)] = static_cast<std::uint32_t>(a);
    }
    std::unordered_map<const ir::BasicBlock*, std::uint32_t> blocks;
    std::uint32_t inst_index = 0;
    for (ir::BasicBlock* bb : func->blocks()) {
      blocks[bb] = static_cast<std::uint32_t>(blocks.size());
      for (ir::Instruction* inst : bb->instructions()) index.insts[inst] = inst_index++;
    }
    w.u64(func->block_count());
    for (ir::BasicBlock* bb : func->blocks()) {
      w.str(bb->name());
      w.u64(bb->size());
      for (ir::Instruction* inst : bb->instructions()) {
        write_instruction(w, inst, globals, functions, blocks, index);
      }
    }
  }
}

Result<std::unique_ptr<ir::Module>> read_module(ByteReader& r) {
  ModuleDecoder decoder(r);
  return decoder.run();
}

std::string serialize_module(const ir::Module& module) {
  ByteWriter payload;
  write_module(payload, module);
  ByteWriter framed;
  framed.u32(std::bit_cast<std::uint32_t>(kModuleMagic));
  framed.u32(kModuleFormatVersion);
  framed.str(payload.bytes());
  framed.u64(fnv1a(payload.bytes()));
  return framed.take();
}

Result<std::unique_ptr<ir::Module>> deserialize_module(std::string_view bytes) {
  ByteReader r(bytes);
  if (r.u32() != std::bit_cast<std::uint32_t>(kModuleMagic)) {
    return Status::error("module blob: bad magic");
  }
  const std::uint32_t format = r.u32();
  if (format == 0 || format > kModuleFormatVersion) {
    return Status::error(strf("module blob: unsupported format version %u", format));
  }
  const std::string payload = r.str();
  const std::uint64_t checksum = r.u64();
  if (!r.ok() || !r.at_end()) return Status::error("module blob: truncated or oversized");
  if (fnv1a(payload) != checksum) return Status::error("module blob: checksum mismatch");
  ByteReader p(payload);
  auto result = read_module(p);
  if (!result.is_ok()) return result;
  if (!p.ok() || !p.at_end()) return Status::error("module blob: trailing garbage in payload");
  return result;
}

}  // namespace autophase::serve
