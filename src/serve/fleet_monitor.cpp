#include "serve/fleet_monitor.hpp"

#include <algorithm>
#include <map>
#include <thread>
#include <utility>

#include "support/str.hpp"

namespace autophase::serve {

std::string fleet_summary(const FleetStats& stats) {
  std::string summary = strf(
      "fleet v%llu: nodes %zu/%zu completed=%llu failed=%llu p50=%.2fms p95=%.2fms "
      "eval hit-rate=%.2f primed=%llu models=[%llu..%llu]",
      static_cast<unsigned long long>(stats.snapshot_version), stats.reachable, stats.nodes,
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed), stats.latency.p50_ms, stats.latency.p95_ms,
      stats.eval_hits + stats.eval_misses + stats.eval_sequence_hits == 0
          ? 0.0
          : static_cast<double>(stats.eval_hits + stats.eval_sequence_hits) /
                static_cast<double>(stats.eval_hits + stats.eval_misses +
                                    stats.eval_sequence_hits),
      static_cast<unsigned long long>(stats.eval_primed),
      static_cast<unsigned long long>(stats.models_min),
      static_cast<unsigned long long>(stats.models_max));
  if (stats.nodes_unreachable > 0) {
    summary += strf(" unreachable=%zu per-reachable=%.1f", stats.nodes_unreachable,
                    stats.completed_per_reachable);
  }
  if (stats.shed_overload > 0 || stats.shed_deadline > 0) {
    summary += strf(" shed overload=%llu deadline=%llu",
                    static_cast<unsigned long long>(stats.shed_overload),
                    static_cast<unsigned long long>(stats.shed_deadline));
  }
  if (stats.members_suspect_max > 0 || stats.members_dead_max > 0) {
    summary += strf(" membership alive>=%llu suspect<=%llu dead<=%llu",
                    static_cast<unsigned long long>(stats.members_alive_min),
                    static_cast<unsigned long long>(stats.members_suspect_max),
                    static_cast<unsigned long long>(stats.members_dead_max));
  }
  if (stats.gossip_rounds > 0 || stats.last_sync_age_ms_max != net::kNeverSynced) {
    summary += strf(" gossip rounds=%llu fetched=%llu stalest-sync=%s",
                    static_cast<unsigned long long>(stats.gossip_rounds),
                    static_cast<unsigned long long>(stats.gossip_fetched),
                    stats.last_sync_age_ms_max == net::kNeverSynced
                        ? "never"
                        : strf("%llums",
                               static_cast<unsigned long long>(stats.last_sync_age_ms_max))
                              .c_str());
  }
  if (stats.learn_promoted > 0 || stats.learn_rolled_back > 0 || stats.provenance_pending > 0 ||
      stats.provenance_dropped > 0) {
    summary += strf(" learn promoted=%llu rolled-back=%llu provenance pending=%llu dropped=%llu",
                    static_cast<unsigned long long>(stats.learn_promoted),
                    static_cast<unsigned long long>(stats.learn_rolled_back),
                    static_cast<unsigned long long>(stats.provenance_pending),
                    static_cast<unsigned long long>(stats.provenance_dropped));
  }
  return summary;
}

FleetMonitor::FleetMonitor(std::shared_ptr<RemoteCompileClient> client)
    : client_(std::move(client)) {}

FleetStats FleetMonitor::poll() {
  const std::size_t nodes = client_->node_count();
  std::vector<FleetNodeReport> reports(nodes);

  // One kStats round trip per node, concurrently: the client is thread-safe
  // and each query rides its own pooled connection.
  const auto query = [&](std::size_t n) {
    FleetNodeReport& report = reports[n];
    report.endpoint = client_->endpoints()[n];
    auto stats = client_->node_stats(n);
    if (stats.is_ok()) {
      report.reachable = true;
      report.stats = std::move(stats).value();
    } else {
      report.error = stats.message();
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(nodes > 0 ? nodes - 1 : 0);
  for (std::size_t n = 1; n < nodes; ++n) workers.emplace_back(query, n);
  if (nodes > 0) query(0);
  for (std::thread& worker : workers) worker.join();

  FleetStats merged;
  merged.nodes = nodes;
  bool first_hist = true;
  std::map<std::pair<std::string, std::uint32_t>, std::pair<std::uint64_t, std::uint64_t>>
      per_model;
  bool first_reachable = true;
  for (const FleetNodeReport& report : reports) {
    if (!report.reachable) continue;
    ++merged.reachable;
    const net::NodeStats& s = report.stats;
    merged.completed += s.completed;
    merged.failed += s.failed;
    merged.rejected += s.rejected;
    merged.queue_depth += s.queue_depth;
    merged.shed_overload += s.shed_overload;
    merged.shed_deadline += s.shed_deadline;
    merged.members_alive_min = first_reachable
                                   ? s.members_alive
                                   : std::min(merged.members_alive_min, s.members_alive);
    merged.members_suspect_max = std::max(merged.members_suspect_max, s.members_suspect);
    merged.members_dead_max = std::max(merged.members_dead_max, s.members_dead);
    merged.eval_hits += s.eval_hits;
    merged.eval_misses += s.eval_misses;
    merged.eval_sequence_hits += s.eval_sequence_hits;
    merged.eval_primed += s.eval_primed;
    merged.models_min = first_reachable ? s.models : std::min(merged.models_min, s.models);
    merged.models_max = std::max(merged.models_max, s.models);
    merged.learn_promoted += s.learn_promoted;
    merged.learn_rolled_back += s.learn_rolled_back;
    merged.provenance_pending += s.provenance_pending;
    merged.provenance_dropped += s.provenance_dropped;
    merged.gossip_rounds += s.gossip_rounds;
    merged.gossip_fetched += s.gossip_fetched;
    // Seeded from the first reachable node (the struct default is the
    // kNeverSynced sentinel, which would otherwise absorb every max()).
    merged.last_sync_age_ms_max = first_reachable
                                      ? s.last_sync_age_ms
                                      : std::max(merged.last_sync_age_ms_max, s.last_sync_age_ms);
    first_reachable = false;
    // The whole percentile merge: identically-specced buckets sum. Seeding
    // from the first node keeps the spec (+= asserts the specs match).
    if (first_hist) {
      merged.latency_hist = s.latency_hist;
      first_hist = false;
    } else {
      merged.latency_hist += s.latency_hist;
    }
    for (const ModelVersionStats& m : s.per_model) {
      auto& counts = per_model[{m.model, m.version}];
      counts.first += m.completed;
      counts.second += m.failed;
    }
    for (std::size_t o = 0; o < kNumObjectives; ++o) {
      merged.objective_completed[o] += s.objective_completed[o];
    }
  }

  merged.nodes_unreachable = merged.nodes - merged.reachable;
  // Rates are over *responding* nodes: dividing by the configured count
  // would make a half-dead fleet look half as loaded instead of half gone.
  merged.completed_per_reachable =
      merged.reachable == 0
          ? 0.0
          : static_cast<double>(merged.completed) / static_cast<double>(merged.reachable);
  merged.latency_samples = static_cast<std::size_t>(merged.latency_hist.count);
  merged.latency = latency_view(merged.latency_hist);
  merged.per_model.reserve(per_model.size());
  for (const auto& [key, counts] : per_model) {
    merged.per_model.push_back({key.first, key.second, counts.first, counts.second});
  }
  merged.per_node = std::move(reports);

  const std::lock_guard<std::mutex> lock(mutex_);
  merged.snapshot_version = next_version_++;
  last_ = merged;
  return merged;
}

FleetStats FleetMonitor::last() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_;
}

}  // namespace autophase::serve
