// RemoteCompileClient: the build-farm side of the serving wire protocol.
// Holds a small connection pool per node, pipelines batches of requests over
// one connection (responses are matched by request id, so they may return in
// any order), enforces per-request deadlines, and routes every compile
// request by consistent-hashing its program fingerprint onto the node ring —
// the same program always lands on the same node, so each node's EvalService
// cache stays hot no matter how many clients are spraying the fleet.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "serve/compile_service.hpp"
#include "serve/model_registry.hpp"

namespace autophase::serve {

struct RemoteClientConfig {
  std::chrono::milliseconds connect_timeout{2'000};
  /// Per-call default; the explicit-deadline overloads override it.
  std::chrono::milliseconds request_deadline{30'000};
  /// Idle connections kept per node beyond which release() closes instead.
  std::size_t pool_per_node = 4;
  /// Ring points per node. More points = smoother key spread.
  std::size_t virtual_nodes = 64;
  std::size_t max_frame_payload = net::kDefaultMaxPayload;
  /// Failure-aware routing: consecutive failures (timeouts included) against
  /// an endpoint before it is backoff-suppressed. While suppressed, the ring
  /// walk routes its keys to the next live point — automatic rebalancing —
  /// and re-admits it when the backoff expires (exponential, doubling per
  /// further failure, capped at backoff_max). A typed kOverloaded bounce
  /// suppresses after a single occurrence: the node said so itself.
  std::size_t backoff_after_failures = 3;
  std::chrono::milliseconds backoff_initial{250};
  std::chrono::milliseconds backoff_max{30'000};
};

/// Snapshot view over the client's obs counters (the counters are the
/// source of truth; this struct is the stable read-back shape).
struct RemoteClientStats {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;    // transport or remote errors
  std::uint64_t timeouts = 0;    // deadline expiries (also counted as failures)
  std::uint64_t connects = 0;    // fresh TCP connections established
  std::uint64_t rerouted = 0;    // requests routed past a suppressed endpoint
  std::uint64_t overloaded = 0;  // typed kOverloaded bounces received
};

class RemoteCompileClient {
 public:
  explicit RemoteCompileClient(std::vector<net::RemoteEndpoint> nodes,
                               RemoteClientConfig config = {});

  RemoteCompileClient(const RemoteCompileClient&) = delete;
  RemoteCompileClient& operator=(const RemoteCompileClient&) = delete;

  /// One request, routed by program fingerprint, answered within the
  /// deadline or failed with a "deadline exceeded" error. A timed-out
  /// connection is discarded — a late response must never be mistaken for
  /// the answer to the next request.
  Result<CompileResponse> compile(const CompileRequest& request);
  Result<CompileResponse> compile(const CompileRequest& request,
                                  std::chrono::milliseconds deadline);

  /// Pipelined batch: requests are partitioned by routing, each node's share
  /// is written back-to-back on one connection before any response is read,
  /// and results[i] always corresponds to requests[i].
  std::vector<Result<CompileResponse>> compile_batch(const std::vector<CompileRequest>& requests);

  /// Publishes through `node` (which replicates to its peers per its own
  /// config) — the explicit "owning node" of the model. Success means the
  /// owning node durably assigned the returned version; peer_failures > 0
  /// reports replicas that missed the push (the version still exists, so a
  /// blind retry would mint a duplicate — reconcile instead).
  Result<net::PublishReply> publish(std::size_t node, const std::string& name,
                                    const PolicyArtifact& artifact);

  Result<std::vector<net::ModelSummary>> list_models(std::size_t node);
  Result<net::NodeStats> node_stats(std::size_t node);
  /// Destructively drains up to `max_records` provenance records from
  /// `node`'s log (MsgType::kProvenance) — the learn::Collector primitive.
  Result<net::ProvenanceBatch> drain_provenance(std::size_t node,
                                                std::uint64_t max_records = 256);
  /// Drives `node`'s shadow-traffic split (MsgType::kCanary): install, stop,
  /// or record a promote/rollback decision. The learn::Promoter broadcasts
  /// these fleet-wide.
  Status canary_control(std::size_t node, const net::CanaryControl& control);
  /// Scrapes `node`'s Prometheus-style text exposition (MsgType::kMetrics) —
  /// the remote twin of ServeNode::metrics_text().
  Result<std::string> node_metrics(std::size_t node);

  /// Ring lookup: which node a program's requests are routed to. Pure ring
  /// semantics (the key's primary), ignoring endpoint health — the compile
  /// path additionally walks past suppressed endpoints (see pick_node).
  [[nodiscard]] std::size_t route(const ir::Module& module) const;
  [[nodiscard]] std::size_t route_fingerprint(std::uint64_t fingerprint) const;

  /// Membership feed: a confirmed-dead endpoint is dropped from routing (its
  /// ring keys rebalance to the next live point) and its pooled connections
  /// are discarded; mark_alive re-admits a rejoined node and clears its
  /// failure accounting. Endpoints not in this client's fleet are ignored.
  void mark_dead(const net::RemoteEndpoint& endpoint);
  void mark_alive(const net::RemoteEndpoint& endpoint);
  /// Is `node` currently skipped by the ring walk (dead or inside backoff)?
  [[nodiscard]] bool suppressed(std::size_t node) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  /// The fleet this client talks to, in node-index order (FleetMonitor
  /// labels its per-node reports with these).
  [[nodiscard]] const std::vector<net::RemoteEndpoint>& endpoints() const noexcept {
    return nodes_;
  }

  [[nodiscard]] RemoteClientStats stats() const;
  /// The client's own scrape surface (client_requests/failures/timeouts/
  /// connects counters). Per-instance, like a ServeNode's registry.
  [[nodiscard]] obs::MetricsRegistry& metrics_registry() noexcept { return metrics_; }

 private:
  struct Lease {
    net::TcpStream stream;
    std::size_t node = 0;
    /// Freshly connected (as opposed to reused from the pool). A pooled
    /// connection may have died while idle (node restart), so transport
    /// failures on a non-fresh lease are retried once on a fresh one.
    bool fresh = false;
  };

  Result<Lease> acquire(std::size_t node, bool force_fresh = false);
  /// Healthy connections return to the pool; poisoned ones are dropped.
  void release(Lease lease, bool healthy);

  /// One request/reply exchange with the stale-pooled-connection retry.
  Result<net::Frame> exchange_op(std::size_t node, const net::Frame& frame);
  /// Writes + reads one node's pipelined share of a batch; returns how many
  /// responses arrived (0 on an immediately-dead connection).
  std::size_t run_node_batch(Lease& lease, const std::vector<CompileRequest>& requests,
                             const std::vector<std::size_t>& batch,
                             std::vector<Result<CompileResponse>>& results, bool& healthy);

  /// One request/response exchange on a leased connection. `transport_ok`
  /// reports whether the stream is still on a frame boundary afterwards
  /// (reusable), independent of the application-level result.
  Result<CompileResponse> roundtrip(Lease& lease, const CompileRequest& request,
                                    net::Deadline deadline, bool* transport_ok);
  /// Sends `frame`, then reads frames until `request_id` answers (pipelined
  /// peers' responses for other ids are never interleaved on a leased
  /// connection, so in practice the first frame is the answer).
  Result<net::Frame> exchange(Lease& lease, const net::Frame& frame, net::Deadline deadline);

  std::uint64_t next_request_id();
  void count_failure(const Status& status);

  /// Health-aware routing: the key's primary unless suppressed, else the
  /// next live node clockwise on the ring (every node suppressed falls back
  /// to the primary — a request must route somewhere, and the primary is the
  /// one whose cache affinity we want back).
  [[nodiscard]] std::size_t pick_node(std::uint64_t fingerprint);
  /// Per-endpoint failure accounting: success resets; failure counts toward
  /// backoff suppression (immediately for a typed overload bounce).
  void note_result(std::size_t node, bool ok, bool overloaded);
  [[nodiscard]] bool suppressed_locked(std::size_t node,
                                       std::chrono::steady_clock::time_point now) const;

  std::vector<net::RemoteEndpoint> nodes_;
  RemoteClientConfig config_;
  /// Consistent-hash ring: (point, node index), sorted by point.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;

  /// Per-endpoint health (guarded by mutex_). `dead` is the membership
  /// verdict — only mark_alive readmits; `backoff_until` is this client's own
  /// exponential suppression from direct failures/overload bounces.
  struct EndpointHealth {
    std::size_t consecutive_failures = 0;
    std::chrono::steady_clock::time_point backoff_until{};
    bool dead = false;
  };

  mutable std::mutex mutex_;
  std::vector<std::vector<net::TcpStream>> idle_;  // per node
  std::vector<EndpointHealth> health_;             // per node
  std::uint64_t next_id_ = 1;

  /// Client-side counters live on an obs registry (scrape-able, lock-free to
  /// bump) instead of a mutex-guarded struct; stats() reads them back.
  obs::MetricsRegistry metrics_;
  obs::Counter& ctr_requests_;
  obs::Counter& ctr_failures_;
  obs::Counter& ctr_timeouts_;
  obs::Counter& ctr_connects_;
  obs::Counter& ctr_rerouted_;
  obs::Counter& ctr_overloaded_;
};

}  // namespace autophase::serve
