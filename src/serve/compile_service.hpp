// Phase-ordering-as-a-service: accepts compile requests (a module + an
// objective), decodes a pass sequence from a registered policy (greedy or
// top-k beam over policy log-probability), measures the result through the
// shared runtime::EvalService, and returns the optimized module with a
// provenance record. Requests flow through a bounded priority queue into a
// worker pool whose policy forwards are folded across requests by a
// PolicyBatcher; overflow produces backpressure instead of unbounded memory.
// Decoding is deterministic — no RNG anywhere on the serve path — so the
// concurrent worker path returns bit-identical pass sequences to
// compile_sync() on one thread.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ir/module.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/eval_service.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/pareto.hpp"
#include "support/status.hpp"
#include "support/thread_pool.hpp"

namespace autophase::serve {

enum class Objective : std::uint8_t {
  kCycles,           // minimise measured cycles
  kCyclesTimesArea,  // minimise the cycles x area latency-area product
  kFixedBudget,      // best cycles using at most `pass_budget` passes
};

/// Contiguous objective count (per-objective metric slots, wire payloads).
inline constexpr std::size_t kNumObjectives = 3;

/// Stable lower-snake name, used as the metric label value for per-objective
/// counters (and therefore part of the scrape surface — do not rename).
const char* objective_name(Objective objective) noexcept;

struct CompileRequest {
  const ir::Module* module = nullptr;
  Objective objective = Objective::kCycles;
  /// Sequence-length cap for kFixedBudget; the other objectives decode for
  /// the model's trained episode length.
  int pass_budget = 8;
  /// 1 = greedy decode; >1 = beam of this width scored by cumulative policy
  /// log-probability, finalists ranked by the measured objective.
  int beam_width = 1;
  std::string model;
  std::int64_t version = 0;  // <= 0 selects the latest
  int priority = 0;          // higher pops first; FIFO within a priority
  /// Multi-objective opt-in: any weight > 0 switches the decode to the
  /// Pareto path (nondominated live set, front in the response). All-zero —
  /// the default — runs the classic scalar decode and produces bit-identical
  /// responses to the pre-Pareto service.
  ObjectiveWeights weights{};
  /// Bound on the nondominated set: live beams per step and points in the
  /// returned front. Only read when `weights` is active.
  int front_width = 8;
  /// Request deadline in milliseconds from admission; 0 = none. Travels on
  /// the wire as kCompileTagDeadline (relative, so clock skew between client
  /// and server never matters); the admitting service stamps `deadline_at`
  /// from it. A queued job whose deadline passes is shed with an
  /// "overloaded: " status instead of burning a worker, and the batcher never
  /// holds its fold window open past a pending deadline.
  std::uint64_t deadline_ms = 0;
  /// Local bookkeeping: the absolute deadline, stamped at admission
  /// (submit/try_submit/compile_sync) from `deadline_ms`. Never serialized.
  /// {} = no deadline.
  std::chrono::steady_clock::time_point deadline_at{};
  /// Tracing identity. Invalid (all-zero, the default) means untraced;
  /// submit/try_submit allocate a fresh root context when the process tracer
  /// is enabled, and a remote client's context arrives here over the wire so
  /// the owning node's spans stitch into the client's trace.
  obs::TraceContext trace{};
};

struct Provenance {
  std::string model;
  std::uint32_t version = 0;
  std::vector<int> sequence;          // Table-1 indices actually applied
  std::uint64_t baseline_cycles = 0;  // unoptimised module
  std::uint64_t predicted_cycles = 0; // value-net estimate, before measuring
  std::uint64_t measured_cycles = 0;  // EvalService-measured result
  double measured_area = 0.0;
  int beams_evaluated = 1;            // finalists measured for the objective
  /// Served by the shadow-canary slice of a traffic split rather than the
  /// model the request named. model/version above identify the canary, so
  /// per-(model,version) outcome counters attribute shadow traffic without
  /// any extra bookkeeping.
  bool canary = false;
};

struct CompileResponse {
  std::unique_ptr<ir::Module> module;  // optimized clone of the request module
  Provenance provenance;
  std::uint64_t queue_nanos = 0;  // time spent waiting for a worker
  std::uint64_t serve_nanos = 0;  // decode + measurement time
  /// Pareto requests only (empty otherwise): the nondominated finalist set
  /// in canonical sort_front order — front[0] is the representative point
  /// the provenance/module describe. Verified nondominated by construction.
  std::vector<ParetoPoint> front;
  /// hypervolume(front) against the unoptimised baseline as the reference.
  double front_hypervolume = 0.0;
};

struct LatencyQuantiles {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

/// The LatencyQuantiles view of a histogram snapshot — the one quantile
/// convention shared by per-node metrics and the fleet merge, so the two
/// views can never silently diverge.
LatencyQuantiles latency_view(const obs::HistogramSnapshot& hist);

/// Per-(model, version) request outcomes. Successful requests count under
/// the version that actually served them (provenance), so "latest" requests
/// attribute correctly across model upgrades; failures count under the
/// version the request asked for (0 = latest) — the served version of a
/// failed request is unknowable.
struct ModelVersionStats {
  std::string model;
  std::uint32_t version = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

struct ServeMetrics {
  std::size_t completed = 0;
  std::size_t failed = 0;     // resolved with an error status
  std::size_t rejected = 0;   // bounced by backpressure / shutdown
  std::size_t cancelled = 0;  // queued work dropped by a cancelling shutdown
  /// Overload-control sheds: queue-saturation evictions/bounces and
  /// deadline-expired-while-queued drops (each also counts under
  /// failed/rejected as appropriate — these split out the *why*).
  std::size_t shed_overload = 0;
  std::size_t shed_deadline = 0;
  std::size_t queue_depth = 0;
  std::size_t max_queue_depth = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  // completed / wall_seconds
  /// submit -> response quantiles, a latency_view() over `latency_hist`.
  LatencyQuantiles latency;
  /// The full submit -> response latency histogram (every request ever, no
  /// truncation). This is what crosses the wire for fleet aggregation:
  /// percentiles merge by summing buckets, never by averaging per-node
  /// quantiles.
  obs::HistogramSnapshot latency_hist;
  /// Sorted by (model, version); see ModelVersionStats for attribution.
  std::vector<ModelVersionStats> per_model;
  /// Completed requests by Objective (POSET-RL-style multi-objective ops).
  std::array<std::uint64_t, kNumObjectives> objective_completed{};
  BatcherStats batcher;
};

struct CompileServiceConfig {
  /// Worker threads. 0 is a valid inline-only configuration: nothing drains
  /// the queue (compile_sync still works), which tests use to pin down
  /// backpressure and cancellation deterministically.
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  BatcherConfig batcher{};
  /// On shutdown/destruction: finish queued requests (true) or cancel them
  /// with an error response (false).
  bool drain_on_shutdown = true;
  /// Overload control: when the queue is saturated, shed instead of blocking
  /// the submitter. The victim is the cheapest-to-retry queued job (lowest
  /// priority, youngest within it) when the incoming request outranks it;
  /// otherwise the incoming request itself bounces. Either way the loser's
  /// future resolves immediately with an "overloaded: " status
  /// (is_overloaded()) — no hang, no stranded promise. Off by default so
  /// embedded users keep classic blocking backpressure; ServeNode enables it
  /// and turns the status into a typed kOverloaded wire reply.
  bool shed_on_saturation = false;
};

/// Shadow-canary traffic split for one served model name: route `fraction`
/// of its latest-version traffic to (canary_model, canary_version) instead.
/// Selection is a pure function of the request module's fingerprint (see
/// shadow_selected), so the same program always lands on the same side —
/// deterministic, replayable, and identical on every node of the fleet.
struct TrafficSplit {
  std::string canary_model;
  std::uint32_t canary_version = 0;  // 0 = canary model's latest
  double fraction = 0.0;             // [0, 1] share of traffic shadowed
};

/// The traffic-split selector: splitmix64-mixes the module fingerprint and
/// compares against `fraction` of the 64-bit space. Exposed so tests and
/// operators can compute the exact canary set for a workload instead of
/// asserting statistically.
[[nodiscard]] bool shadow_selected(std::uint64_t fingerprint, double fraction) noexcept;

/// True when `status` is a load-shed rejection ("overloaded: " message
/// prefix): nothing is wrong with the request itself — back off and retry,
/// ideally on another node. RemoteCompileClient uses this to apply endpoint
/// backoff without poisoning the pooled connection, and ServeNode maps it to
/// the typed kOverloaded wire reply.
[[nodiscard]] bool is_overloaded(const Status& status) noexcept;

/// Decodes and measures one request against a resolved artifact — the shared
/// core of the worker path and compile_sync. `batcher` is optional; without
/// one, policy forwards run inline (still via forward_batch for beam fronts).
Result<CompileResponse> serve_compile(const PolicyArtifact& artifact,
                                      const CompileRequest& request,
                                      runtime::EvalService& eval, PolicyBatcher* batcher);

/// What warm_up() did for one freshly installed artifact.
struct WarmupReport {
  std::size_t baselines = 0;  // warm-up entries the artifact carried
  std::size_t primed = 0;     // entries newly inserted into the eval cache
  bool forwards_run = false;  // dummy policy/value forwards executed
  /// Baselines were stamped with a different eval-config fingerprint than
  /// this node's, so priming was skipped: the trainer's cycle counts would
  /// be wrong under this node's constraints.
  bool config_mismatch = false;
};

/// Serving-time model warm-up, run when an artifact lands in a node's
/// registry (publish, replication, or catch-up): pre-faults the policy and
/// value weights with a dummy forward_batch — the first real request never
/// pays first-touch page faults or lazily-grown allocator pools — and primes
/// `eval`'s cycle cache from the artifact's training-corpus baseline section
/// (v1 artifacts carry none; they skip priming and report baselines == 0).
WarmupReport warm_up(const PolicyArtifact& artifact, runtime::EvalService& eval);

class CompileService {
 public:
  using ResponseFuture = std::future<Result<CompileResponse>>;

  CompileService(std::shared_ptr<ModelRegistry> registry,
                 std::shared_ptr<runtime::EvalService> eval, CompileServiceConfig config = {});
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Bounded enqueue. Blocks while the queue is full (backpressure); after
  /// shutdown the future resolves immediately with a rejection status.
  ResponseFuture submit(CompileRequest request);
  /// Non-blocking variant: nullopt when the queue is full or shut down.
  std::optional<ResponseFuture> try_submit(CompileRequest request);

  /// Single-threaded reference path: runs the request inline on the caller
  /// thread — no queue, no cross-request batching. Produces bit-identical
  /// pass sequences to the worker path by construction.
  Result<CompileResponse> compile_sync(const CompileRequest& request);

  /// Idempotent; honours config.drain_on_shutdown. Called by the destructor,
  /// which therefore never races queued work against member teardown.
  void shutdown();

  /// warm_up() for one registered model against this service's eval service
  /// (ServeNode invokes this automatically for every artifact its registry
  /// installs; standalone embedders call it by hand after publishing).
  Result<WarmupReport> warm_up_model(const std::string& name, std::int64_t version = 0);

  // ---- Shadow-canary traffic splits (learn::Promoter drives these) ----
  /// Installs or replaces the split for `model`. Applies only to requests
  /// asking for the latest version (version <= 0): a pinned version is a
  /// reproducibility contract and is never rerouted. When the canary artifact
  /// is missing (e.g. gossip has not delivered it yet), the split is a no-op
  /// for that request — shadow serving degrades to incumbent serving, never
  /// to an error.
  void set_traffic_split(const std::string& model, TrafficSplit split);
  void clear_traffic_split(const std::string& model);
  [[nodiscard]] std::optional<TrafficSplit> traffic_split(const std::string& model) const;

  /// Observes every successfully completed queued request (the serving path)
  /// after its metrics are recorded and before its future resolves. ServeNode
  /// installs one to append learn::ProvenanceRecords for the online loop.
  using ProvenanceHook = std::function<void(const CompileRequest&, const CompileResponse&)>;
  void set_provenance_hook(ProvenanceHook hook);

  [[nodiscard]] ServeMetrics metrics() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const std::shared_ptr<ModelRegistry>& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const std::shared_ptr<runtime::EvalService>& eval_service() const noexcept {
    return eval_;
  }
  /// This service's scrape surface. Every counter/gauge/histogram the serve
  /// path records lives here (ServeMetrics is a typed view over it); the
  /// ctor also installs callback gauges over the eval-service shard counters
  /// and the model registry, so one render_text() covers the whole node.
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics_registry() const noexcept {
    return metrics_registry_;
  }

 private:
  struct Job {
    CompileRequest request;
    std::promise<Result<CompileResponse>> promise;
    std::uint64_t sequence = 0;  // FIFO tiebreak within a priority level
    std::chrono::steady_clock::time_point enqueued;
    std::size_t depth_at_entry = 0;  // queue depth when this job joined (span attr)
  };
  /// Max-heap order: higher priority first, then earlier submission.
  struct JobOrder {
    bool operator()(const Job& a, const Job& b) const noexcept {
      if (a.request.priority != b.request.priority) {
        return a.request.priority < b.request.priority;
      }
      return a.sequence > b.sequence;
    }
  };

  void worker_loop();
  Result<CompileResponse> run_request(const CompileRequest& request, PolicyBatcher* batcher);
  ResponseFuture rejected_future();
  /// Shared tail of submit/try_submit: builds the job, pushes it onto the
  /// heap, and handles wakeups + depth bookkeeping. Consumes `lock` (held on
  /// entry, released before notifying).
  ResponseFuture enqueue_locked(CompileRequest request, std::unique_lock<std::mutex>& lock);
  /// Saturated-queue shed path (config.shed_on_saturation): evicts the
  /// cheapest-to-retry queued job when `request` outranks it, else bounces
  /// `request`. Consumes `lock` like enqueue_locked.
  ResponseFuture shed_locked(CompileRequest request, std::unique_lock<std::mutex>& lock);
  void finish_job(Job job);

  std::shared_ptr<ModelRegistry> registry_;
  std::shared_ptr<runtime::EvalService> eval_;
  CompileServiceConfig config_;
  PolicyBatcher batcher_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  // workers: work available / stopping
  std::condition_variable space_cv_;  // submitters: capacity available
  std::vector<Job> queue_;            // heap under JobOrder
  std::uint64_t next_sequence_ = 0;
  bool stopping_ = false;

  /// Control-plane state read on the serve path (traffic splits, provenance
  /// hook). Guarded separately from mutex_ (the queue lock) so a split lookup
  /// in run_request never contends with enqueue/dequeue.
  mutable std::mutex control_mutex_;
  std::map<std::string, TrafficSplit> splits_;
  ProvenanceHook provenance_hook_;

  /// All request-outcome state lives in the registry; the named handles below
  /// are the hot-path instruments (relaxed atomics, acquired once). Labelled
  /// families (per-model outcomes, per-objective completions, cycle error)
  /// are looked up per request — one small map probe on a millisecond path.
  std::shared_ptr<obs::MetricsRegistry> metrics_registry_;
  obs::Counter& ctr_completed_;
  obs::Counter& ctr_failed_;
  obs::Counter& ctr_rejected_;
  obs::Counter& ctr_cancelled_;
  obs::Counter& ctr_shed_overload_;  // jobs shed because the queue saturated
  obs::Counter& ctr_shed_deadline_;  // jobs shed because their deadline passed queued
  obs::Gauge& gauge_queue_depth_;
  obs::Gauge& gauge_max_queue_depth_;
  obs::Histogram& hist_latency_ms_;

  /// Declared last so it is destroyed first; shutdown() has already stopped
  /// the queue by the time the pool joins its workers.
  ThreadPool pool_;
};

}  // namespace autophase::serve
