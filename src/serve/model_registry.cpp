#include "serve/model_registry.hpp"

#include <fstream>

#include "serve/serialization.hpp"

namespace autophase::serve {

std::uint32_t ModelRegistry::publish(const std::string& name, PolicyArtifact artifact) {
  std::shared_ptr<const PolicyArtifact> installed;
  std::uint32_t version = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& versions = models_[name];
    version = versions.empty() ? 1 : versions.rbegin()->first + 1;
    artifact.name = name;
    artifact.version = version;
    installed = std::make_shared<const PolicyArtifact>(std::move(artifact));
    versions.emplace(version, installed);
  }
  notify_installed(installed);
  return version;
}

std::shared_ptr<const PolicyArtifact> ModelRegistry::get(const std::string& name,
                                                         std::int64_t version) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(name);
  if (it == models_.end() || it->second.empty()) return nullptr;
  if (version <= 0) return it->second.rbegin()->second;
  const auto vit = it->second.find(static_cast<std::uint32_t>(version));
  return vit == it->second.end() ? nullptr : vit->second;
}

std::vector<ModelRegistry::ModelKey> ModelRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ModelKey> out;
  for (const auto& [name, versions] : models_) {
    for (const auto& [version, artifact] : versions) out.push_back({name, version});
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, versions] : models_) n += versions.size();
  return n;
}

Result<std::string> ModelRegistry::export_model(const std::string& name,
                                                std::int64_t version) const {
  const std::shared_ptr<const PolicyArtifact> artifact = get(name, version);
  if (artifact == nullptr) return Status::error("export: unknown model " + name);
  return serialize_artifact(*artifact);
}

Result<ModelRegistry::ModelKey> ModelRegistry::import_model(std::string_view bytes) {
  auto artifact = deserialize_artifact(bytes);
  if (!artifact.is_ok()) return artifact.status();
  PolicyArtifact value = std::move(artifact).value();
  if (value.name.empty()) return Status::error("import: artifact has no name");
  ModelKey key{value.name, value.version == 0 ? 1 : value.version};
  value.version = key.version;
  auto installed = std::make_shared<const PolicyArtifact>(std::move(value));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    models_[key.name][key.version] = installed;
  }
  notify_installed(installed);
  return key;
}

void ModelRegistry::set_install_hook(InstallHook hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  install_hook_ = std::move(hook);
}

void ModelRegistry::notify_installed(const std::shared_ptr<const PolicyArtifact>& artifact) {
  InstallHook hook;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    hook = install_hook_;
  }
  if (hook) hook(artifact);
}

Status ModelRegistry::export_file(const std::string& name, std::int64_t version,
                                  const std::string& path) const {
  const std::shared_ptr<const PolicyArtifact> artifact = get(name, version);
  if (artifact == nullptr) return Status::error("export: unknown model " + name);
  return save_artifact_file(*artifact, path);
}

Result<ModelRegistry::ModelKey> ModelRegistry::import_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::error("cannot open for reading: " + path);
  const std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) return Status::error("read failed: " + path);
  return import_model(bytes);
}

}  // namespace autophase::serve
