#include "serve/serialization.hpp"

#include <bit>
#include <cstring>
#include <fstream>

#include "features/features.hpp"
#include "passes/pass.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"

namespace autophase::serve {

namespace {

constexpr char kMagic[4] = {'A', 'P', 'S', 'B'};  // AutoPhase Serve Blob

/// Cross-field consistency of a fully deserialized artifact. The checksum
/// authenticates nothing — a well-framed blob can still carry indices that
/// would read out of bounds at serve time — so every field that is later
/// used as an index is bounded here, at the trust boundary, instead of in
/// each consumer.
Status validate_artifact(const PolicyArtifact& a) {
  if (a.spec.episode_length < 1 || a.spec.episode_length > 4096) {
    return Status::error("artifact: episode length out of range");
  }
  for (const int f : a.spec.feature_subset) {
    if (f < 0 || f >= features::kNumFeatures) {
      return Status::error("artifact: feature subset index out of range");
    }
  }
  for (const int p : a.spec.action_subset) {
    if (p < 0 || p >= passes::kNumPasses) {
      return Status::error("artifact: action subset index out of range");
    }
  }
  if (!a.normalizer.identity() && a.normalizer.mean.size() != a.policy.config().input) {
    return Status::error("artifact: normalizer length does not match policy input");
  }
  if (a.value.has_value() && (a.value->config().input != a.policy.config().input ||
                              a.value->config().output != 1)) {
    return Status::error("artifact: value net shape does not match policy input");
  }
  return Status::ok();
}

void write_baselines_section(ByteWriter& w, const PolicyArtifact& artifact) {
  w.u64(artifact.baselines_config);  // measuring eval service's fingerprint
  w.u64(artifact.baselines.size());
  for (const CorpusBaseline& b : artifact.baselines) {
    w.u64(b.fingerprint);
    w.u64(b.cycles);
    w.f64(b.area);
  }
}

Status read_baselines_section(std::string_view bytes, PolicyArtifact& artifact) {
  ByteReader r(bytes);
  artifact.baselines_config = r.u64();
  const std::uint64_t n = r.u64();
  // 24 bytes per entry: a corrupt count must fail before the reserve.
  if (!r.ok() || n > r.remaining() / 24) {
    return Status::error("artifact baselines: corrupt entry count");
  }
  artifact.baselines.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    CorpusBaseline b;
    b.fingerprint = r.u64();
    b.cycles = r.u64();
    b.area = r.f64();
    artifact.baselines.push_back(b);
  }
  if (!r.ok() || !r.at_end()) return Status::error("artifact baselines: truncated section");
  return Status::ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view v) {
  u64(v.size());
  buf_.append(v);
}

void ByteWriter::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

void ByteWriter::i32_vec(const std::vector<int>& v) {
  u64(v.size());
  for (const int x : v) i32(x);
}

bool ByteReader::take(void* out, std::size_t n) {
  if (!ok_ || remaining() < n) {
    ok_ = false;
    std::memset(out, 0, n);
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  std::uint8_t v = 0;
  take(&v, 1);
  return v;
}

std::uint32_t ByteReader::u32() {
  std::uint8_t raw[4] = {};
  take(raw, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint8_t raw[8] = {};
  take(raw, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
  return v;
}

std::int32_t ByteReader::i32() { return static_cast<std::int32_t>(u32()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return {};
  }
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

std::vector<double> ByteReader::f64_vec() {
  const std::uint64_t n = u64();
  if (!ok_ || n > remaining() / 8) {
    ok_ = false;
    return {};
  }
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64());
  return out;
}

std::vector<int> ByteReader::i32_vec() {
  const std::uint64_t n = u64();
  if (!ok_ || n > remaining() / 4) {
    ok_ = false;
    return {};
  }
  std::vector<int> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(i32());
  return out;
}

// ---------------------------------------------------------------------------
// Component codecs
// ---------------------------------------------------------------------------

void write_mlp(ByteWriter& w, const ml::Mlp& net) {
  const ml::MlpConfig& c = net.config();
  w.u64(c.input);
  w.u64(c.hidden.size());
  for (const std::size_t h : c.hidden) w.u64(h);
  w.u64(c.output);
  w.u8(static_cast<std::uint8_t>(c.activation));
  w.f64(c.init_stddev_scale);
  // Shapes are implied by the config; only the flat parameters travel.
  w.f64_vec(net.flatten());
}

Result<ml::Mlp> read_mlp(ByteReader& r) {
  // Hard cap on any single layer width; keeps the arithmetic below far from
  // overflow and rejects absurd shapes before a single matrix is allocated.
  constexpr std::uint64_t kMaxDim = 1u << 20;
  ml::MlpConfig c;
  c.input = r.u64();
  const std::uint64_t hidden = r.u64();
  if (!r.ok() || hidden > 64) return Status::error("mlp: corrupt hidden-layer count");
  c.hidden.clear();
  for (std::uint64_t i = 0; i < hidden; ++i) c.hidden.push_back(r.u64());
  c.output = r.u64();
  const std::uint8_t activation = r.u8();
  if (activation > static_cast<std::uint8_t>(ml::Activation::kRelu)) {
    return Status::error("mlp: unknown activation");
  }
  c.activation = static_cast<ml::Activation>(activation);
  c.init_stddev_scale = r.f64();
  if (c.input == 0 || c.output == 0) return Status::error("mlp: zero-width layer");
  std::vector<std::uint64_t> dims;
  dims.push_back(c.input);
  dims.insert(dims.end(), c.hidden.begin(), c.hidden.end());
  dims.push_back(c.output);
  std::uint64_t expected = 0;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    if (dims[l] == 0 || dims[l] > kMaxDim || dims[l + 1] > kMaxDim) {
      return Status::error("mlp: layer width out of range");
    }
    expected += (dims[l] + 1) * dims[l + 1];  // weights + bias row
  }
  const std::vector<double> flat = r.f64_vec();  // count bounded by blob size
  if (!r.ok()) return Status::error("mlp: truncated blob");
  // Validate the parameter count arithmetically BEFORE constructing the net:
  // a corrupt shape must fail cleanly, not allocate petabyte matrices.
  if (flat.size() != expected) {
    return Status::error(strf("mlp: parameter count mismatch (blob %zu, shape %llu)", flat.size(),
                              static_cast<unsigned long long>(expected)));
  }
  ml::Mlp net(c);
  net.assign(flat);
  return net;
}

void write_forest(ByteWriter& w, const ml::RandomForest& forest) {
  const ml::ForestConfig& c = forest.config();
  w.i32(c.num_trees);
  w.i32(c.max_depth);
  w.i32(c.min_samples_leaf);
  w.i32(c.features_per_split);
  w.u64(c.seed);
  w.f64_vec(forest.feature_importances());
  w.u64(forest.trees().size());
  for (const auto& tree : forest.trees()) {
    w.u64(tree.nodes().size());
    for (const auto& node : tree.nodes()) {
      w.i32(node.feature);
      w.f64(node.threshold);
      w.f64(node.prob_one);
      w.i32(node.left);
      w.i32(node.right);
    }
  }
}

Result<ml::RandomForest> read_forest(ByteReader& r) {
  ml::ForestConfig c;
  c.num_trees = r.i32();
  c.max_depth = r.i32();
  c.min_samples_leaf = r.i32();
  c.features_per_split = r.i32();
  c.seed = r.u64();
  std::vector<double> importances = r.f64_vec();
  const std::uint64_t num_trees = r.u64();
  if (!r.ok() || num_trees > (1u << 20)) return Status::error("forest: corrupt tree count");
  std::vector<ml::DecisionTree> trees;
  trees.reserve(num_trees);
  for (std::uint64_t t = 0; t < num_trees; ++t) {
    const std::uint64_t num_nodes = r.u64();
    if (!r.ok() || num_nodes > (1u << 26)) return Status::error("forest: corrupt node count");
    std::vector<ml::DecisionTree::Node> nodes;
    nodes.reserve(num_nodes);
    for (std::uint64_t n = 0; n < num_nodes; ++n) {
      ml::DecisionTree::Node node;
      node.feature = r.i32();
      node.threshold = r.f64();
      node.prob_one = r.f64();
      node.left = r.i32();
      node.right = r.i32();
      const int count = static_cast<int>(num_nodes);
      const int self = static_cast<int>(n);
      if (node.feature < -1 || node.feature >= (1 << 20)) {
        return Status::error("forest: node feature index out of range");
      }
      if (node.feature >= 0) {
        // Internal node: the builder always appends children after their
        // parent, so requiring self < child < count also rules out the
        // cycles and negative indices that would hang or crash predict().
        if (node.left <= self || node.left >= count || node.right <= self ||
            node.right >= count) {
          return Status::error("forest: node child index out of range");
        }
      } else if (node.left != -1 || node.right != -1) {
        return Status::error("forest: leaf with children");
      }
      nodes.push_back(node);
    }
    trees.push_back(ml::DecisionTree::from_nodes(std::move(nodes)));
  }
  if (!r.ok()) return Status::error("forest: truncated blob");
  return ml::RandomForest::from_parts(c, std::move(trees), std::move(importances));
}

void write_normalizer(ByteWriter& w, const FeatureNormalizer& normalizer) {
  w.f64_vec(normalizer.mean);
  w.f64_vec(normalizer.inv_std);
}

Result<FeatureNormalizer> read_normalizer(ByteReader& r) {
  FeatureNormalizer n;
  n.mean = r.f64_vec();
  n.inv_std = r.f64_vec();
  if (!r.ok()) return Status::error("normalizer: truncated blob");
  if (n.mean.size() != n.inv_std.size()) {
    return Status::error("normalizer: mean/inv_std size mismatch");
  }
  return n;
}

// ---------------------------------------------------------------------------
// Artifact framing
// ---------------------------------------------------------------------------

std::string serialize_artifact(const PolicyArtifact& artifact) {
  ByteWriter payload;
  payload.str(artifact.name);
  payload.u32(artifact.version);
  payload.i32(artifact.spec.episode_length);
  payload.u8(static_cast<std::uint8_t>(artifact.spec.observation));
  payload.u8(static_cast<std::uint8_t>(artifact.spec.normalization));
  payload.u8(artifact.spec.include_terminate ? 1 : 0);
  payload.u8(artifact.spec.log_reward ? 1 : 0);
  payload.i32_vec(artifact.spec.feature_subset);
  payload.i32_vec(artifact.spec.action_subset);
  payload.u64(artifact.action_groups);
  payload.u64(artifact.action_arity);
  write_mlp(payload, artifact.policy);
  payload.u8(artifact.value.has_value() ? 1 : 0);
  if (artifact.value) write_mlp(payload, *artifact.value);
  payload.u8(artifact.forest.has_value() ? 1 : 0);
  if (artifact.forest) write_forest(payload, *artifact.forest);
  write_normalizer(payload, artifact.normalizer);

  // Optional sections (format v2). An artifact with none serializes as v1,
  // so pre-v2 blobs and their checksums are reproduced bit-identically and
  // replication across mixed-version fleets keeps converging.
  const bool has_sections = !artifact.baselines.empty();
  std::uint32_t format = 1;
  if (has_sections) {
    format = kFormatVersion;
    std::uint32_t sections = 0;
    if (!artifact.baselines.empty()) ++sections;
    payload.u32(sections);
    if (!artifact.baselines.empty()) {
      payload.u32(static_cast<std::uint32_t>(ArtifactSection::kCorpusBaselines));
      ByteWriter section;
      write_baselines_section(section, artifact);
      payload.str(section.bytes());  // length-prefixed: unknown tags are skippable
    }
  }

  ByteWriter framed;
  framed.u32(std::bit_cast<std::uint32_t>(kMagic));
  framed.u32(format);
  framed.str(payload.bytes());  // length-prefixed payload
  framed.u64(fnv1a(payload.bytes()));
  return framed.take();
}

Result<PolicyArtifact> deserialize_artifact(std::string_view bytes) {
  ByteReader r(bytes);
  if (r.u32() != std::bit_cast<std::uint32_t>(kMagic)) {
    return Status::error("artifact: bad magic (not an AutoPhase model blob)");
  }
  const std::uint32_t format = r.u32();
  if (format == 0 || format > kFormatVersion) {
    return Status::error(strf("artifact: unsupported format version %u (reader supports <= %u)",
                              format, kFormatVersion));
  }
  const std::string payload = r.str();
  const std::uint64_t checksum = r.u64();
  if (!r.ok() || !r.at_end()) return Status::error("artifact: truncated or oversized blob");
  if (fnv1a(payload) != checksum) return Status::error("artifact: checksum mismatch");

  ByteReader p(payload);
  std::string name = p.str();
  const std::uint32_t version = p.u32();
  ObservationSpec spec;
  spec.episode_length = p.i32();
  const std::uint8_t observation = p.u8();
  const std::uint8_t normalization = p.u8();
  if (observation > static_cast<std::uint8_t>(rl::ObservationMode::kBoth) ||
      normalization > static_cast<std::uint8_t>(rl::NormalizationMode::kInstCountRatio)) {
    return Status::error("artifact: unknown observation/normalization mode");
  }
  spec.observation = static_cast<rl::ObservationMode>(observation);
  spec.normalization = static_cast<rl::NormalizationMode>(normalization);
  spec.include_terminate = p.u8() != 0;
  spec.log_reward = p.u8() != 0;
  spec.feature_subset = p.i32_vec();
  spec.action_subset = p.i32_vec();
  const std::uint64_t groups = p.u64();
  const std::uint64_t arity = p.u64();
  if (!p.ok()) return Status::error("artifact: truncated header");

  auto policy = read_mlp(p);
  if (!policy.is_ok()) return Status::error("artifact policy: " + policy.message());

  PolicyArtifact artifact{.name = std::move(name),
                          .version = version,
                          .spec = std::move(spec),
                          .action_groups = groups,
                          .action_arity = arity,
                          .policy = std::move(policy).value(),
                          .value = std::nullopt,
                          .forest = std::nullopt,
                          .normalizer = {}};
  if (p.u8() != 0) {
    auto value = read_mlp(p);
    if (!value.is_ok()) return Status::error("artifact value: " + value.message());
    artifact.value = std::move(value).value();
  }
  if (p.u8() != 0) {
    auto forest = read_forest(p);
    if (!forest.is_ok()) return Status::error("artifact forest: " + forest.message());
    artifact.forest = std::move(forest).value();
  }
  auto normalizer = read_normalizer(p);
  if (!normalizer.is_ok()) return Status::error("artifact: " + normalizer.message());
  artifact.normalizer = std::move(normalizer).value();
  if (format >= 2) {
    const std::uint32_t sections = p.u32();
    if (!p.ok() || sections > 64) return Status::error("artifact: corrupt section count");
    for (std::uint32_t s = 0; s < sections; ++s) {
      const std::uint32_t tag = p.u32();
      const std::string section = p.str();
      if (!p.ok()) return Status::error("artifact: truncated section table");
      switch (static_cast<ArtifactSection>(tag)) {
        case ArtifactSection::kCorpusBaselines: {
          if (const Status s = read_baselines_section(section, artifact); !s.is_ok()) return s;
          break;
        }
        default:
          break;  // an unknown optional section from a newer writer: skip
      }
    }
  }
  if (!p.ok() || !p.at_end()) return Status::error("artifact: trailing garbage in payload");
  if (const Status valid = validate_artifact(artifact); !valid.is_ok()) return valid;
  return artifact;
}

Status save_artifact_file(const PolicyArtifact& artifact, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::error("cannot open for writing: " + path);
  const std::string bytes = serialize_artifact(artifact);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::error("write failed: " + path);
  return Status::ok();
}

Result<PolicyArtifact> load_artifact_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::error("cannot open for reading: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) return Status::error("read failed: " + path);
  return deserialize_artifact(bytes);
}

}  // namespace autophase::serve
