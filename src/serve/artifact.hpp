// Serving-side model artifact: a trained policy/value pair plus the exact
// observation recipe it was trained with, packaged so a process that never
// saw training can reconstruct bit-identical inference. This is the unit the
// ModelRegistry versions and the binary serializer round-trips — the
// AutoPhase deployment story (§6.2: a trained agent picks orderings for
// unseen programs in milliseconds instead of hours of search).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ml/mlp.hpp"
#include "ml/random_forest.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "runtime/eval_service.hpp"

namespace autophase::serve {

/// Optional per-dimension whitening fitted on training observations. Empty
/// vectors = identity (the paper's envs feed raw or mode-normalised
/// features straight to the nets).
struct FeatureNormalizer {
  std::vector<double> mean;
  std::vector<double> inv_std;

  [[nodiscard]] bool identity() const noexcept { return mean.empty(); }
  void apply(std::vector<double>& observation) const;
  /// Fits mean / 1/stddev per dimension (stddev floored at 1e-9).
  static FeatureNormalizer fit(const std::vector<std::vector<double>>& observations);
};

/// The subset of rl::EnvConfig a served policy depends on: enough to
/// reproduce the observations (and the action indexing) the policy was
/// trained on. Everything else about EnvConfig is a training concern.
struct ObservationSpec {
  int episode_length = 45;
  rl::ObservationMode observation = rl::ObservationMode::kProgramFeatures;
  rl::NormalizationMode normalization = rl::NormalizationMode::kNone;
  bool include_terminate = false;
  bool log_reward = false;
  std::vector<int> feature_subset;  // Table-2 indices; empty = all 56
  std::vector<int> action_subset;   // Table-1 indices; empty = all 45
};

ObservationSpec spec_of(const rl::EnvConfig& config);
/// Inverse of spec_of for the serving-relevant fields (evaluation wiring —
/// constraints, services — is left at defaults for the caller to fill).
rl::EnvConfig env_config_of(const ObservationSpec& spec);

/// One training-corpus measurement that ships with the artifact (format-v2
/// optional section). On import a serving node primes its EvalService cache
/// with these, so the first request for a program the model was trained on
/// finds its baseline measure already resolved instead of running the
/// simulator cold.
struct CorpusBaseline {
  std::uint64_t fingerprint = 0;  // ir::module_fingerprint of the program
  std::uint64_t cycles = 0;
  double area = 0.0;
};

/// A versioned, self-contained trained artifact. `name`/`version` are
/// assigned by ModelRegistry::publish and embedded in the serialized blob so
/// an imported model keeps its identity across processes.
struct PolicyArtifact {
  std::string name;
  std::uint32_t version = 0;
  ObservationSpec spec;
  std::size_t action_groups = 1;
  std::size_t action_arity = 0;
  ml::Mlp policy;
  std::optional<ml::Mlp> value;            // return predictor (provenance)
  std::optional<ml::RandomForest> forest;  // §4 pass-relevance classifier
  FeatureNormalizer normalizer;
  /// Optional warm-up section. Empty = none (the blob serializes as v1).
  std::vector<CorpusBaseline> baselines;
  /// EvalService::config_fingerprint() of the service that measured the
  /// baselines. Warm-up refuses to prime a node whose eval config disagrees
  /// (the trainer's cycle counts would be wrong there). 0 = unstamped
  /// (hand-built baselines; trusted as-is).
  std::uint64_t baselines_config = 0;
};

/// Packages a trainer's exported nets with the env recipe they were trained
/// on (copies the weights; the trainer can keep training afterwards).
PolicyArtifact make_artifact(const rl::PolicyExport& exported, const rl::EnvConfig& env_config,
                             FeatureNormalizer normalizer = {});

/// Measures each training-corpus program through `eval` (cache-served when
/// the trainer already profiled it) and packages the results as the warm-up
/// section for an artifact about to be published.
std::vector<CorpusBaseline> collect_baselines(const std::vector<const ir::Module*>& corpus,
                                              runtime::EvalService& eval);

/// collect_baselines + stamps the artifact with `eval`'s config fingerprint
/// — the form publishers should use, so serving nodes with a different eval
/// configuration skip priming instead of caching the wrong cycle counts.
void attach_baselines(PolicyArtifact& artifact, const std::vector<const ir::Module*>& corpus,
                      runtime::EvalService& eval);

}  // namespace autophase::serve
