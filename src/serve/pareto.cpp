#include "serve/pareto.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>

#include "support/hash.hpp"

namespace autophase::serve {

namespace {

/// Equal on every *active* objective — the duplicate case front_insert
/// collapses by fingerprint.
bool equal_on_active(const ParetoPoint& a, const ParetoPoint& b,
                     const ObjectiveWeights& w) noexcept {
  if (w.cycles > 0.0 && a.cycles != b.cycles) return false;
  if (w.area > 0.0 && a.area != b.area) return false;
  if (w.ir_size > 0.0 && a.ir_size != b.ir_size) return false;
  return true;
}

}  // namespace

std::uint64_t weights_key(const ObjectiveWeights& weights) noexcept {
  // Bit patterns, not values: the key must agree exactly with operator==,
  // and going through doubles would fold values == compares apart (NaN) or
  // collapse ones it distinguishes (-0.0 vs 0.0 never occurs here, but the
  // bit_cast convention matches how weights travel on the wire).
  std::uint64_t h = 0x9a7e70f407ULL;  // arbitrary seed
  h = hash_combine(h, std::bit_cast<std::uint64_t>(weights.cycles));
  h = hash_combine(h, std::bit_cast<std::uint64_t>(weights.area));
  h = hash_combine(h, std::bit_cast<std::uint64_t>(weights.ir_size));
  return h;
}

bool dominates(const ParetoPoint& a, const ParetoPoint& b,
               const ObjectiveWeights& weights) noexcept {
  bool strictly_better = false;
  if (weights.cycles > 0.0) {
    if (a.cycles > b.cycles) return false;
    if (a.cycles < b.cycles) strictly_better = true;
  }
  if (weights.area > 0.0) {
    if (a.area > b.area) return false;
    if (a.area < b.area) strictly_better = true;
  }
  if (weights.ir_size > 0.0) {
    if (a.ir_size > b.ir_size) return false;
    if (a.ir_size < b.ir_size) strictly_better = true;
  }
  return strictly_better;
}

double scalar_score(const ParetoPoint& point, const ObjectiveWeights& weights) noexcept {
  return weights.cycles * static_cast<double>(point.cycles) + weights.area * point.area +
         weights.ir_size * static_cast<double>(point.ir_size);
}

bool front_insert(std::vector<ParetoPoint>& front, ParetoPoint point,
                  const ObjectiveWeights& weights, std::size_t max_width) {
  for (ParetoPoint& member : front) {
    if (dominates(member, point, weights)) return false;
    if (equal_on_active(member, point, weights)) {
      // Duplicate objective vector: deterministic collapse by fingerprint,
      // independent of the order candidates were produced in.
      if (point.fingerprint < member.fingerprint) {
        member = std::move(point);
        return true;
      }
      return false;
    }
  }
  std::erase_if(front,
                [&](const ParetoPoint& member) { return dominates(point, member, weights); });
  front.push_back(std::move(point));
  if (max_width == 0 || front.size() <= max_width) return true;
  // Bounded width: evict the worst scalarised member (tie-break: larger
  // fingerprint goes), which may be the point just inserted.
  std::size_t worst = 0;
  for (std::size_t i = 1; i < front.size(); ++i) {
    const double si = scalar_score(front[i], weights);
    const double sw = scalar_score(front[worst], weights);
    if (si > sw || (si == sw && front[i].fingerprint > front[worst].fingerprint)) worst = i;
  }
  const bool evicted_new = worst == front.size() - 1;
  front.erase(front.begin() + static_cast<std::ptrdiff_t>(worst));
  return !evicted_new;
}

bool is_nondominated(std::span<const ParetoPoint> front,
                     const ObjectiveWeights& weights) noexcept {
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      if (dominates(front[i], front[j], weights)) return false;
      if (i < j && equal_on_active(front[i], front[j], weights)) return false;
    }
  }
  return true;
}

void sort_front(std::vector<ParetoPoint>& front, const ObjectiveWeights& weights) {
  std::sort(front.begin(), front.end(), [&](const ParetoPoint& a, const ParetoPoint& b) {
    const double sa = scalar_score(a, weights);
    const double sb = scalar_score(b, weights);
    if (sa != sb) return sa < sb;
    return a.fingerprint < b.fingerprint;
  });
}

double hypervolume(std::span<const ParetoPoint> front, const ParetoPoint& reference,
                   const ObjectiveWeights& weights) noexcept {
  // Active dimensions in fixed (cycles, area, ir_size) order.
  std::array<double, 3> refs{};
  std::size_t dims = 0;
  if (weights.cycles > 0.0) refs[dims++] = static_cast<double>(reference.cycles);
  if (weights.area > 0.0) refs[dims++] = reference.area;
  if (weights.ir_size > 0.0) refs[dims++] = static_cast<double>(reference.ir_size);
  if (dims == 0) return 0.0;
  for (std::size_t k = 0; k < dims; ++k) {
    if (refs[k] <= 0.0) return 0.0;  // nothing can strictly improve on a zero baseline
  }

  // Normalise by the reference; a point not strictly inside [0, 1)^d spans
  // an empty box against the reference corner and is dropped.
  std::vector<std::array<double, 3>> pts;
  pts.reserve(front.size());
  for (const ParetoPoint& p : front) {
    std::array<double, 3> c{};
    std::size_t k = 0;
    if (weights.cycles > 0.0) {
      c[k] = static_cast<double>(p.cycles) / refs[k];
      ++k;
    }
    if (weights.area > 0.0) {
      c[k] = p.area / refs[k];
      ++k;
    }
    if (weights.ir_size > 0.0) {
      c[k] = static_cast<double>(p.ir_size) / refs[k];
      ++k;
    }
    bool inside = true;
    for (std::size_t d = 0; d < dims; ++d) inside = inside && c[d] < 1.0;
    if (inside) pts.push_back(c);
  }
  if (pts.empty()) return 0.0;

  // Coordinate-compressed union of boxes [c, 1]^d: a grid cell is covered
  // iff some point is <= its lower corner in every dimension.
  std::array<std::vector<double>, 3> coords;
  for (std::size_t k = 0; k < dims; ++k) {
    for (const auto& c : pts) coords[k].push_back(c[k]);
    coords[k].push_back(1.0);
    std::sort(coords[k].begin(), coords[k].end());
    coords[k].erase(std::unique(coords[k].begin(), coords[k].end()), coords[k].end());
  }

  double volume = 0.0;
  std::array<std::size_t, 3> idx{};
  while (true) {
    double cell = 1.0;
    bool covered_possible = true;
    std::array<double, 3> lower{};
    for (std::size_t k = 0; k < dims; ++k) {
      lower[k] = coords[k][idx[k]];
      cell *= coords[k][idx[k] + 1] - lower[k];
      covered_possible = covered_possible && cell > 0.0;
    }
    if (covered_possible) {
      for (const auto& c : pts) {
        bool covers = true;
        for (std::size_t k = 0; k < dims; ++k) covers = covers && c[k] <= lower[k];
        if (covers) {
          volume += cell;
          break;
        }
      }
    }
    // Advance the mixed-radix cell index; radix k runs over cells, i.e.
    // coords[k].size() - 1 positions.
    std::size_t k = 0;
    while (k < dims && ++idx[k] == coords[k].size() - 1) idx[k++] = 0;
    if (k == dims) break;
  }
  return volume;
}

}  // namespace autophase::serve
