#include "serve/compile_service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <numeric>

#include "features/features.hpp"
#include "ir/clone.hpp"
#include "ir/printer.hpp"
#include "ml/distributions.hpp"
#include "passes/pass.hpp"
#include "rl/env.hpp"
#include "support/str.hpp"

namespace autophase::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t nanos_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// One decode hypothesis: the materialised module plus the state the
/// observation builder needs.
struct Beam {
  std::unique_ptr<ir::Module> module;
  std::vector<int> sequence;
  std::vector<double> histogram;
  double score = 0.0;  // cumulative policy log-probability
};

ml::Matrix row_matrix(const std::vector<double>& v) {
  ml::Matrix m(1, v.size());
  std::copy(v.begin(), v.end(), m.row(0));
  return m;
}

/// Undoes the env's reward shaping to express a predicted return in cycles.
double predicted_improvement(double value, bool log_reward) {
  if (!log_reward) return value;
  return value >= 0 ? std::expm1(value) : -std::expm1(-value);
}

/// Pareto-decode hypothesis: a Beam that additionally knows its measured
/// objectives and fingerprint (every materialised beam is measured up front —
/// dominance pruning needs real objective values, and the eval cache makes
/// re-visits free).
struct ParetoBeam {
  std::unique_ptr<ir::Module> module;
  std::vector<int> sequence;
  std::vector<double> histogram;
  double score = 0.0;  // cumulative policy log-probability (expansion order)
  runtime::Measure measure{};
  std::uint64_t fingerprint = 0;
};

ParetoPoint point_of(const std::vector<int>& sequence, const runtime::Measure& measure,
                     std::uint64_t fingerprint) {
  return {sequence, measure.cycles, measure.area, measure.ir_size, fingerprint};
}

/// The multi-objective decode (request.weights is active). Beam expansion is
/// the scalar algorithm with beam_width == front_width — per beam its top-k
/// actions by logit, globally the top-k candidates by cumulative
/// log-probability — but every materialised beam is measured, the live set
/// is dominance-pruned per step (nondominated among the step's children,
/// bounded, deterministic tie-break by fingerprint), and the finalists form
/// the returned front. With front_width == 1 and one active objective this
/// degenerates exactly — same candidate, vacuous pruning — to the scalar
/// greedy walk, which the degeneration test pins bit-for-bit.
Result<CompileResponse> serve_pareto(const PolicyArtifact& artifact,
                                     const CompileRequest& request, runtime::EvalService& eval,
                                     PolicyBatcher* batcher, const std::vector<int>& actions,
                                     bool has_terminate, std::size_t arity,
                                     const std::vector<int>& features,
                                     const rl::EnvConfig& obs_config, int budget) {
  const ObjectiveWeights& weights = request.weights;
  const std::size_t width = static_cast<std::size_t>(std::clamp(request.front_width, 1, 64));
  const std::uint64_t group_key = weights_key(weights);

  const auto t0 = Clock::now();
  AP_SPAN(serve_span, request.trace, "serve");
  serve_span.attr("model", artifact.name);
  serve_span.attr("version", static_cast<std::uint64_t>(artifact.version));
  serve_span.attr("objective", "pareto");
  serve_span.attr("front_width", static_cast<std::uint64_t>(width));

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  bool ran_simulator = false;
  const auto count_lookup = [&] { ran_simulator ? ++cache_misses : ++cache_hits; };

  ParetoBeam root;
  root.module = ir::clone_module_for_rollout(*request.module);
  root.histogram.assign(arity, 0.0);
  root.fingerprint = ir::module_fingerprint(*root.module);
  root.measure = eval.measure(*root.module, root.fingerprint, &ran_simulator);
  count_lookup();
  // The unoptimised program is the hypervolume reference point, not a front
  // member: the front reports what the decode produced, exactly like the
  // scalar path never answers with the un-compiled module.
  const runtime::Measure baseline = root.measure;
  const ParetoPoint baseline_point = point_of({}, baseline, root.fingerprint);

  const auto observe = [&](const ParetoBeam& beam) {
    std::vector<double> obs =
        rl::build_observation(*beam.module, beam.histogram, obs_config, features);
    artifact.normalizer.apply(obs);
    return obs;
  };
  const std::vector<double> root_observation = observe(root);
  if (root_observation.size() != artifact.policy.config().input) {
    return Status::error(strf("observation size %zu does not match policy input %zu",
                              root_observation.size(), artifact.policy.config().input));
  }

  struct Finalist {
    std::vector<int> sequence;
    runtime::Measure measure;
    std::uint64_t fingerprint = 0;
  };
  std::vector<Finalist> finalists;
  std::vector<ParetoBeam> live;
  live.push_back(std::move(root));

  // The policy-greedy chain (argmax action from the greedy parent, every
  // step) is pinned: exempt from the candidate cut and from dominance
  // pruning. It is exactly the walk the scalar decode takes, so its endpoint
  // always reaches the finalists — which is what guarantees every front
  // scalarises at least as well as the scalar response to the same request
  // (the bench gate `front_dominates_scalar`). Dominance pruning alone can't
  // promise that: a sibling may dominate the greedy child mid-decode and
  // still land on a worse endpoint.
  constexpr std::size_t kNoBeam = static_cast<std::size_t>(-1);
  std::size_t greedy = 0;  // index into `live` of the pinned beam
  bool greedy_alive = true;

  for (int step = 0; step < budget && !live.empty(); ++step) {
    AP_SPAN(step_span, serve_span.context(), "decode_step");
    step_span.attr("step", static_cast<std::uint64_t>(step));
    step_span.attr("beams", static_cast<std::uint64_t>(live.size()));
    std::vector<std::vector<double>> observations;
    observations.reserve(live.size());
    if (step == 0) {
      observations.push_back(root_observation);
    } else {
      std::vector<const ir::Module*> front_modules;
      std::vector<std::vector<double>> histograms;
      front_modules.reserve(live.size());
      histograms.reserve(live.size());
      for (const ParetoBeam& beam : live) {
        front_modules.push_back(beam.module.get());
        histograms.push_back(beam.histogram);
      }
      observations = rl::build_observation_batch(front_modules, histograms, obs_config, features);
      for (std::vector<double>& obs : observations) artifact.normalizer.apply(obs);
    }
    std::vector<std::vector<double>> logits;
    if (batcher != nullptr) {
      std::size_t batch_rows = 0;
      logits = batcher->infer_many(artifact, observations, &batch_rows, group_key,
                                   request.deadline_at);
      step_span.attr("batch_rows", static_cast<std::uint64_t>(batch_rows));
    } else {
      const ml::Matrix out = artifact.policy.forward_batch(observations);
      for (std::size_t r = 0; r < out.rows(); ++r) {
        logits.emplace_back(out.row(r), out.row(r) + out.cols());
      }
      step_span.attr("batch_rows", static_cast<std::uint64_t>(observations.size()));
    }

    struct Candidate {
      std::size_t parent;
      std::size_t action;
      double score;
    };
    std::vector<Candidate> candidates;
    std::size_t greedy_action = 0;
    for (std::size_t b = 0; b < live.size(); ++b) {
      std::vector<std::size_t> order(arity);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        if (logits[b][x] != logits[b][y]) return logits[b][x] > logits[b][y];
        return x < y;
      });
      if (greedy_alive && b == greedy) greedy_action = order[0];
      const std::size_t expand = std::min(width, arity);
      for (std::size_t k = 0; k < expand; ++k) {
        const std::size_t a = order[k];
        candidates.push_back({b, a, live[b].score + ml::log_prob(logits[b].data(), arity, a)});
      }
    }
    std::sort(candidates.begin(), candidates.end(), [](const Candidate& x, const Candidate& y) {
      if (x.score != y.score) return x.score > y.score;
      if (x.parent != y.parent) return x.parent < y.parent;
      return x.action < y.action;
    });
    if (candidates.size() > width) candidates.resize(width);
    if (greedy_alive) {
      // Cumulative log-prob can rank the greedy child below the cut (greedy
      // is only locally optimal); swap it in over the weakest survivor.
      const bool present =
          std::any_of(candidates.begin(), candidates.end(), [&](const Candidate& c) {
            return c.parent == greedy && c.action == greedy_action;
          });
      if (!present) {
        const double score =
            live[greedy].score + ml::log_prob(logits[greedy].data(), arity, greedy_action);
        candidates.back() = {greedy, greedy_action, score};
      }
    }

    // Materialise + measure the survivors; terminate freezes the parent (its
    // measurement happened when it was created, so this costs nothing).
    std::vector<int> uses(live.size(), 0);
    for (const Candidate& c : candidates) ++uses[c.parent];
    std::vector<ParetoBeam> children;
    std::size_t greedy_child = kNoBeam;  // index into `children` of the pinned child
    for (const Candidate& c : candidates) {
      const bool pinned = greedy_alive && c.parent == greedy && c.action == greedy_action;
      if (has_terminate && c.action + 1 == arity) {
        --uses[c.parent];  // keep steal accounting exact for later siblings
        finalists.push_back(
            {live[c.parent].sequence, live[c.parent].measure, live[c.parent].fingerprint});
        if (pinned) greedy_alive = false;  // the chain's endpoint is now a finalist
        continue;
      }
      if (pinned) greedy_child = children.size();
      ParetoBeam child;
      child.sequence = live[c.parent].sequence;
      child.histogram = live[c.parent].histogram;
      child.score = c.score;
      child.module = --uses[c.parent] == 0 ? std::move(live[c.parent].module)
                                           : ir::clone_module(*live[c.parent].module);
      const int pass_index = actions[c.action];
      passes::apply_pass(*child.module, pass_index);
      child.histogram[c.action] += 1.0;
      child.sequence.push_back(pass_index);
      child.fingerprint = ir::module_fingerprint(*child.module);
      child.measure = eval.measure(*child.module, child.fingerprint, &ran_simulator);
      count_lookup();
      children.push_back(std::move(child));
    }

    // The nondominated live set: dominance-prune the step's children against
    // each other (duplicates collapse by fingerprint, width-bounded by
    // scalarised eviction), then carry the surviving beams — in candidate
    // order — into the next step.
    std::vector<ParetoPoint> step_front;
    for (const ParetoBeam& child : children) {
      front_insert(step_front, point_of(child.sequence, child.measure, child.fingerprint),
                   weights, width);
    }
    std::vector<ParetoBeam> next;
    std::size_t next_greedy = kNoBeam;
    for (std::size_t i = 0; i < children.size(); ++i) {
      ParetoBeam& child = children[i];
      const auto it =
          std::find_if(step_front.begin(), step_front.end(), [&](const ParetoPoint& p) {
            return p.fingerprint == child.fingerprint;
          });
      const bool pinned = greedy_alive && i == greedy_child;
      if (it == step_front.end() && !pinned) continue;
      if (it != step_front.end()) step_front.erase(it);  // one beam per surviving point
      if (pinned) next_greedy = next.size();
      next.push_back(std::move(child));
    }
    greedy = next_greedy;
    greedy_alive = greedy_alive && greedy != kNoBeam;
    step_span.attr("pruned", static_cast<std::uint64_t>(children.size() - next.size()));
    live = std::move(next);
  }
  for (ParetoBeam& beam : live) {
    finalists.push_back({std::move(beam.sequence), beam.measure, beam.fingerprint});
  }

  std::vector<ParetoPoint> front;
  for (const Finalist& f : finalists) {
    front_insert(front, point_of(f.sequence, f.measure, f.fingerprint), weights, width);
  }
  sort_front(front, weights);
  serve_span.attr("finalists", static_cast<std::uint64_t>(finalists.size()));
  serve_span.attr("front_size", static_cast<std::uint64_t>(front.size()));
  serve_span.attr("cache_hits", cache_hits);
  serve_span.attr("cache_misses", cache_misses);

  // front[0] is the representative (best scalarised) point; its module is
  // re-derived by replaying the sequence — passes are deterministic, so this
  // is the module that was measured, and the clone is fully materialised.
  const ParetoPoint& representative = front.front();
  auto module = ir::clone_module_for_rollout(*request.module);
  passes::apply_pass_sequence(*module, representative.sequence);
  module->materialize_all();

  std::uint64_t predicted = baseline.cycles;
  if (artifact.value.has_value()) {
    const double value = artifact.value->forward(row_matrix(root_observation)).at(0, 0);
    const double improvement = predicted_improvement(value, artifact.spec.log_reward);
    const double estimate = std::max(0.0, static_cast<double>(baseline.cycles) - improvement);
    predicted = static_cast<std::uint64_t>(estimate);
  }

  CompileResponse response;
  response.module = std::move(module);
  response.provenance = {artifact.name,
                         artifact.version,
                         representative.sequence,
                         baseline.cycles,
                         predicted,
                         representative.cycles,
                         representative.area,
                         static_cast<int>(finalists.size())};
  response.front_hypervolume = hypervolume(front, baseline_point, weights);
  response.front = std::move(front);
  response.serve_nanos = nanos_between(t0, Clock::now());
  return response;
}

}  // namespace

const char* objective_name(Objective objective) noexcept {
  switch (objective) {
    case Objective::kCycles: return "cycles";
    case Objective::kCyclesTimesArea: return "cycles_times_area";
    case Objective::kFixedBudget: return "fixed_budget";
  }
  return "unknown";
}

LatencyQuantiles latency_view(const obs::HistogramSnapshot& hist) {
  LatencyQuantiles q;
  q.p50_ms = hist.quantile(0.5);
  q.p95_ms = hist.quantile(0.95);
  q.mean_ms = hist.mean();
  q.max_ms = hist.max;
  return q;
}

Result<CompileResponse> serve_compile(const PolicyArtifact& artifact,
                                      const CompileRequest& request,
                                      runtime::EvalService& eval, PolicyBatcher* batcher) {
  if (request.module == nullptr) return Status::error("compile request has no module");
  if (artifact.action_groups != 1) {
    return Status::error("serving requires a single-action policy (action_groups == 1)");
  }

  // Action/feature tables exactly as the training env derived them.
  std::vector<int> actions;
  if (artifact.spec.action_subset.empty()) {
    for (int i = 0; i < passes::kNumPasses; ++i) actions.push_back(i);
  } else {
    actions = artifact.spec.action_subset;
  }
  const bool has_terminate = artifact.spec.include_terminate;
  const std::size_t arity = actions.size() + (has_terminate ? 1 : 0);
  if (arity != artifact.action_arity) {
    return Status::error(strf("artifact action table mismatch (spec arity %zu, net arity %zu)",
                              arity, artifact.action_arity));
  }
  // A checksum guards integrity, not shape consistency: a policy whose
  // output row is narrower than the action space would send the decoder
  // reading past the logits buffer.
  if (artifact.policy.config().output != arity) {
    return Status::error(strf("policy output width %zu does not match action arity %zu",
                              artifact.policy.config().output, arity));
  }
  std::vector<int> features;
  if (artifact.spec.feature_subset.empty()) {
    for (int i = 0; i < features::kNumFeatures; ++i) features.push_back(i);
  } else {
    features = artifact.spec.feature_subset;
  }
  const rl::EnvConfig obs_config = env_config_of(artifact.spec);

  const int budget = request.objective == Objective::kFixedBudget
                         ? std::max(1, request.pass_budget)
                         : std::max(1, artifact.spec.episode_length);
  const std::size_t beam_width = static_cast<std::size_t>(std::max(1, request.beam_width));

  if (!artifact.normalizer.identity() &&
      artifact.normalizer.mean.size() != artifact.policy.config().input) {
    return Status::error("artifact normalizer length does not match policy input");
  }

  if (request.weights.active()) {
    // Multi-objective opt-in: the Pareto decode replaces the scalar walk
    // below (beam_width is superseded by front_width). Weightless requests
    // never reach it, which is the bit-identity guarantee.
    return serve_pareto(artifact, request, eval, batcher, actions, has_terminate, arity, features,
                        obs_config, budget);
  }

  const auto t0 = Clock::now();
  AP_SPAN(serve_span, request.trace, "serve");
  serve_span.attr("model", artifact.name);
  serve_span.attr("version", static_cast<std::uint64_t>(artifact.version));
  serve_span.attr("objective", objective_name(request.objective));
  serve_span.attr("beam_width", static_cast<std::uint64_t>(beam_width));
  const auto observe = [&](const Beam& beam) {
    std::vector<double> obs =
        rl::build_observation(*beam.module, beam.histogram, obs_config, features);
    artifact.normalizer.apply(obs);
    return obs;
  };

  std::vector<Beam> live;
  // CoW rollout clone of the request program: the root's observation and
  // fingerprint read through to the source; bodies deep-copy only once a
  // pass mutates a beam. (Beam *children* use plain arena-backed
  // clone_module — their parents die at the end of the step, so they may
  // not hold lazy references into them.)
  live.push_back(
      {ir::clone_module_for_rollout(*request.module), {}, std::vector<double>(arity, 0.0), 0.0});
  const std::vector<double> root_observation = observe(live[0]);
  if (root_observation.size() != artifact.policy.config().input) {
    return Status::error(strf("observation size %zu does not match policy input %zu",
                              root_observation.size(), artifact.policy.config().input));
  }

  std::vector<Beam> finished;
  for (int step = 0; step < budget && !live.empty(); ++step) {
    AP_SPAN(step_span, serve_span.context(), "decode_step");
    step_span.attr("step", static_cast<std::uint64_t>(step));
    step_span.attr("beams", static_cast<std::uint64_t>(live.size()));
    // One stacked forward for the whole beam front; through the batcher the
    // rows additionally fold with other requests in flight.
    std::vector<std::vector<double>> observations;
    observations.reserve(live.size());
    if (step == 0) {
      observations.push_back(root_observation);  // only the root beam exists
    } else {
      // Batched SoA feature extraction over the whole beam front; rows are
      // bit-identical to per-beam observe() (same extractor, same order).
      std::vector<const ir::Module*> front;
      std::vector<std::vector<double>> histograms;
      front.reserve(live.size());
      histograms.reserve(live.size());
      for (const Beam& beam : live) {
        front.push_back(beam.module.get());
        histograms.push_back(beam.histogram);
      }
      observations = rl::build_observation_batch(front, histograms, obs_config, features);
      for (std::vector<double>& obs : observations) artifact.normalizer.apply(obs);
    }
    std::vector<std::vector<double>> logits;
    if (batcher != nullptr) {
      std::size_t batch_rows = 0;
      logits = batcher->infer_many(artifact, observations, &batch_rows, 0,
                                   request.deadline_at);
      step_span.attr("batch_rows", static_cast<std::uint64_t>(batch_rows));
    } else {
      const ml::Matrix out = artifact.policy.forward_batch(observations);
      for (std::size_t r = 0; r < out.rows(); ++r) {
        logits.emplace_back(out.row(r), out.row(r) + out.cols());
      }
      step_span.attr("batch_rows", static_cast<std::uint64_t>(observations.size()));
    }

    // Expand: per beam, its top-k actions; overall, the top-k candidates.
    // Every tiebreak is on (parent index, action index), so the expansion
    // order — and therefore the served sequence — is deterministic.
    struct Candidate {
      std::size_t parent;
      std::size_t action;
      double score;
    };
    std::vector<Candidate> candidates;
    for (std::size_t b = 0; b < live.size(); ++b) {
      std::vector<std::size_t> order(arity);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        if (logits[b][x] != logits[b][y]) return logits[b][x] > logits[b][y];
        return x < y;
      });
      const std::size_t expand = std::min(beam_width, arity);
      for (std::size_t k = 0; k < expand; ++k) {
        const std::size_t a = order[k];
        candidates.push_back({b, a, live[b].score + ml::log_prob(logits[b].data(), arity, a)});
      }
    }
    std::sort(candidates.begin(), candidates.end(), [](const Candidate& x, const Candidate& y) {
      if (x.score != y.score) return x.score > y.score;
      if (x.parent != y.parent) return x.parent < y.parent;
      return x.action < y.action;
    });
    if (candidates.size() > beam_width) candidates.resize(beam_width);

    // Materialise survivors. The last candidate to use a parent steals its
    // module instead of cloning — greedy decoding never clones after step 0.
    std::vector<int> uses(live.size(), 0);
    for (const Candidate& c : candidates) ++uses[c.parent];
    std::vector<Beam> next;
    for (const Candidate& c : candidates) {
      Beam child;
      child.sequence = live[c.parent].sequence;
      child.histogram = live[c.parent].histogram;
      child.score = c.score;
      child.module = --uses[c.parent] == 0 ? std::move(live[c.parent].module)
                                           : ir::clone_module(*live[c.parent].module);
      if (has_terminate && c.action + 1 == arity) {
        finished.push_back(std::move(child));
        continue;
      }
      const int pass_index = actions[c.action];
      passes::apply_pass(*child.module, pass_index);
      child.histogram[c.action] += 1.0;
      child.sequence.push_back(pass_index);
      next.push_back(std::move(child));
    }
    live = std::move(next);
  }
  for (Beam& beam : live) finished.push_back(std::move(beam));
  // Keep only the beam_width most probable finalists for measurement (early
  // terminations can otherwise pile up finalists beyond the beam width).
  std::stable_sort(finished.begin(), finished.end(),
                   [](const Beam& a, const Beam& b) { return a.score > b.score; });
  if (finished.size() > beam_width) finished.resize(beam_width);

  // Rank finalists by the *measured* objective through the shared service.
  AP_SPAN(measure_span, serve_span.context(), "measure");
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  bool ran_simulator = false;  // eval's "was this call the one that measured"
  const auto count_lookup = [&] { ran_simulator ? ++cache_misses : ++cache_hits; };
  const runtime::Measure baseline = eval.measure(*request.module, &ran_simulator);
  count_lookup();
  std::size_t best = 0;
  double best_score = 0.0;
  runtime::Measure best_measure;
  for (std::size_t i = 0; i < finished.size(); ++i) {
    const runtime::Measure m = eval.measure(*finished[i].module, &ran_simulator);
    count_lookup();
    const double score = request.objective == Objective::kCyclesTimesArea
                             ? static_cast<double>(m.cycles) * m.area
                             : static_cast<double>(m.cycles);
    if (i == 0 || score < best_score) {
      best = i;
      best_score = score;
      best_measure = m;
    }
  }
  measure_span.attr("finalists", static_cast<std::uint64_t>(finished.size()));
  measure_span.attr("cache_hits", cache_hits);
  measure_span.attr("cache_misses", cache_misses);

  std::uint64_t predicted = baseline.cycles;
  if (artifact.value.has_value()) {
    const double value = artifact.value->forward(row_matrix(root_observation)).at(0, 0);
    const double improvement = predicted_improvement(value, artifact.spec.log_reward);
    const double estimate = std::max(0.0, static_cast<double>(baseline.cycles) - improvement);
    predicted = static_cast<std::uint64_t>(estimate);
  }

  // The winner can still be CoW-lazy (an empty winning sequence never ran a
  // pass); the response outlives the request it borrows from, so cut the
  // tie before the module escapes.
  finished[best].module->materialize_all();
  CompileResponse response;
  response.module = std::move(finished[best].module);
  response.provenance = {artifact.name,
                         artifact.version,
                         std::move(finished[best].sequence),
                         baseline.cycles,
                         predicted,
                         best_measure.cycles,
                         best_measure.area,
                         static_cast<int>(finished.size())};
  response.serve_nanos = nanos_between(t0, Clock::now());
  return response;
}

WarmupReport warm_up(const PolicyArtifact& artifact, runtime::EvalService& eval) {
  WarmupReport report;
  // Pre-fault the weight pages: one dummy row through every layer touches
  // every matrix exactly the way the first real forward would.
  const std::vector<std::vector<double>> dummy(
      1, std::vector<double>(artifact.policy.config().input, 0.0));
  (void)artifact.policy.forward_batch(dummy);
  if (artifact.value.has_value()) (void)artifact.value->forward_batch(dummy);
  report.forwards_run = true;

  report.baselines = artifact.baselines.size();
  // Stamped baselines are only valid on a node whose eval config matches the
  // service that measured them; 0 = unstamped (hand-built), trusted as-is.
  if (artifact.baselines_config != 0 &&
      artifact.baselines_config != eval.config_fingerprint()) {
    report.config_mismatch = true;
    return report;
  }
  for (const CorpusBaseline& b : artifact.baselines) {
    if (eval.prime(b.fingerprint, {b.cycles, b.area})) ++report.primed;
  }
  return report;
}

bool is_overloaded(const Status& status) noexcept {
  return !status.is_ok() && status.message().rfind("overloaded: ", 0) == 0;
}

// ---------------------------------------------------------------------------
// CompileService
// ---------------------------------------------------------------------------

CompileService::CompileService(std::shared_ptr<ModelRegistry> registry,
                               std::shared_ptr<runtime::EvalService> eval,
                               CompileServiceConfig config)
    : registry_(std::move(registry)),
      eval_(std::move(eval)),
      config_(config),
      batcher_(config.batcher),
      started_(Clock::now()),
      metrics_registry_(std::make_shared<obs::MetricsRegistry>()),
      ctr_completed_(metrics_registry_->counter("serve_requests_completed")),
      ctr_failed_(metrics_registry_->counter("serve_requests_failed")),
      ctr_rejected_(metrics_registry_->counter("serve_requests_rejected")),
      ctr_cancelled_(metrics_registry_->counter("serve_requests_cancelled")),
      ctr_shed_overload_(metrics_registry_->counter("serve_shed_overload")),
      ctr_shed_deadline_(metrics_registry_->counter("serve_shed_deadline")),
      gauge_queue_depth_(metrics_registry_->gauge("serve_queue_depth")),
      gauge_max_queue_depth_(metrics_registry_->gauge("serve_queue_depth_max")),
      hist_latency_ms_(metrics_registry_->histogram("serve_latency_ms")),
      pool_(std::max<std::size_t>(1, config.workers)) {
  if (eval_ == nullptr) eval_ = std::make_shared<runtime::EvalService>();
  // Scrape-time views over state owned elsewhere: the eval service's sharded
  // exactly-once counters and the model registry keep their own bookkeeping;
  // the registry polls them instead of double counting. Captured shared_ptrs
  // keep the viewed objects alive as long as the registry's scrape surface.
  const std::shared_ptr<runtime::EvalService> eval_view = eval_;
  metrics_registry_->gauge_fn("eval_cache_hits", {}, [eval_view] {
    return static_cast<double>(eval_view->stats().hits);
  });
  metrics_registry_->gauge_fn("eval_cache_misses", {}, [eval_view] {
    return static_cast<double>(eval_view->stats().misses);
  });
  metrics_registry_->gauge_fn("eval_sequence_hits", {}, [eval_view] {
    return static_cast<double>(eval_view->stats().sequence_hits);
  });
  metrics_registry_->gauge_fn("eval_cache_primed", {}, [eval_view] {
    return static_cast<double>(eval_view->stats().primed);
  });
  const std::shared_ptr<ModelRegistry> registry_view = registry_;
  if (registry_view != nullptr) {
    metrics_registry_->gauge_fn("registry_artifacts", {}, [registry_view] {
      return static_cast<double>(registry_view->size());
    });
  }
  // Batcher views capture `this`: the batcher is a member, so these gauges
  // are valid exactly while the service (and thus its registry handle here)
  // lives — the supported scrape pattern (ServeNode renders while serving).
  metrics_registry_->gauge_fn("batcher_batches", {}, [this] {
    return static_cast<double>(batcher_.stats().batches);
  });
  metrics_registry_->gauge_fn("batcher_rows", {}, [this] {
    return static_cast<double>(batcher_.stats().rows);
  });
  metrics_registry_->gauge_fn("batcher_max_batch_rows", {}, [this] {
    return static_cast<double>(batcher_.stats().max_batch_rows);
  });
  metrics_registry_->gauge_fn("batcher_window_clamps", {}, [this] {
    return static_cast<double>(batcher_.stats().window_clamps);
  });
  for (std::size_t i = 0; i < config_.workers; ++i) {
    pool_.submit([this] { worker_loop(); });
  }
}

CompileService::~CompileService() { shutdown(); }

void CompileService::shutdown() {
  std::vector<Job> cancelled;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      stopping_ = true;
      // With zero workers nothing can drain, so a "draining" shutdown would
      // strand queued promises; cancel explicitly instead.
      if (!config_.drain_on_shutdown || config_.workers == 0) {
        cancelled = std::move(queue_);
        queue_.clear();
      }
    }
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (Job& job : cancelled) {
    job.promise.set_value(Status::error("cancelled: compile service shut down"));
  }
  if (!cancelled.empty()) ctr_cancelled_.inc(cancelled.size());
  // Workers wake, drain whatever remains, and exit; only then does the pool
  // join — queued work never races member teardown.
  pool_.shutdown(ThreadPool::ShutdownMode::kDrain);
}

void CompileService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and nothing left to drain
      std::pop_heap(queue_.begin(), queue_.end(), JobOrder{});
      job = std::move(queue_.back());
      queue_.pop_back();
      gauge_queue_depth_.set(static_cast<double>(queue_.size()));
    }
    space_cv_.notify_one();
    if (job.request.deadline_at != std::chrono::steady_clock::time_point{} &&
        Clock::now() >= job.request.deadline_at) {
      // The deadline passed while the job queued: nobody is waiting for this
      // answer any more, so shed it instead of burning a worker on it.
      // Counters first: a caller woken by the future must already see the
      // shed reflected in metrics().
      ctr_shed_deadline_.inc();
      ctr_failed_.inc();
      job.promise.set_value(
          Status::error("overloaded: deadline expired while queued; retry with more headroom"));
      continue;
    }
    finish_job(std::move(job));
  }
}

void CompileService::finish_job(Job job) {
  const auto start = Clock::now();
  const std::uint64_t wait_ns = nanos_between(job.enqueued, start);
  obs::Tracer& tracer = obs::tracer();
  const obs::TraceContext root_ctx = job.request.trace;  // as submitted (or from the wire)
  obs::TraceContext req_ctx{};
  std::uint64_t enqueue_trace_ns = 0;
  if (tracer.enabled() && root_ctx.valid()) {
    // Mint the request span id up front so the queue span (below) and the
    // serve-path spans both parent under it; the request span itself is
    // recorded once the job resolves. Its start is backdated to enqueue time
    // via the measured queue wait (Clock and the trace clock are the same
    // steady clock).
    req_ctx = tracer.child_of(root_ctx);
    enqueue_trace_ns = obs::trace_now_ns() - wait_ns;
    obs::SpanRecord queue_span;
    queue_span.trace = req_ctx.trace;
    queue_span.span = tracer.next_span_id();
    queue_span.parent = req_ctx.span;
    queue_span.name = "queue";
    queue_span.start_ns = enqueue_trace_ns;
    queue_span.duration_ns = wait_ns;
    queue_span.thread = obs::current_thread_ordinal();
    queue_span.attrs.emplace_back("queue_depth",
                                  strf("%zu", job.depth_at_entry));
    queue_span.attrs.emplace_back("priority", strf("%d", job.request.priority));
    tracer.record(std::move(queue_span));
    job.request.trace = req_ctx;  // serve-path spans become children of "request"
  }
  Result<CompileResponse> result = run_request(job.request, &batcher_);
  const bool ok = result.is_ok();
  if (ok) result.value().queue_nanos = wait_ns;
  const double total_ms =
      static_cast<double>(nanos_between(job.enqueued, Clock::now())) / 1e6;
  // Success attributes to the (model, version) that served it — under a
  // shadow split that is the canary, so per-model counters separate canary
  // traffic from incumbent traffic without extra bookkeeping. Failure
  // attributes to what was requested (see ModelVersionStats). Metrics are
  // recorded *before* the promise resolves, so a caller that just observed
  // its future can already see the request in metrics().
  const std::string& model = ok ? result.value().provenance.model : job.request.model;
  const std::uint32_t version =
      ok ? result.value().provenance.version
         : static_cast<std::uint32_t>(std::max<std::int64_t>(0, job.request.version));
  metrics_registry_
      ->counter("serve_model_requests", {{"model", model},
                                         {"version", strf("%u", version)},
                                         {"outcome", ok ? "completed" : "failed"}})
      .inc();
  if (ok) {
    ctr_completed_.inc();
    metrics_registry_
        ->counter("serve_objective_completed",
                  {{"objective", objective_name(job.request.objective)}})
        .inc();
    // Predicted-vs-measured cycle error, the serving-side view of value-net
    // calibration, bucketed per (model, version) so a regressing upgrade is
    // visible next to the version that caused it.
    const Provenance& prov = result.value().provenance;
    if (prov.measured_cycles > 0) {
      const double error_pct = 100.0 *
                               std::abs(static_cast<double>(prov.predicted_cycles) -
                                        static_cast<double>(prov.measured_cycles)) /
                               static_cast<double>(prov.measured_cycles);
      metrics_registry_
          ->histogram("serve_cycle_error_pct",
                      {{"model", prov.model}, {"version", strf("%u", prov.version)}})
          .record(error_pct);
    }
    // Pareto requests: front size + hypervolume distributions (the obs view
    // of multi-objective serving quality; scalar requests record nothing).
    if (!result.value().front.empty()) {
      metrics_registry_->counter("serve_pareto_requests").inc();
      metrics_registry_->histogram("serve_front_size")
          .record(static_cast<double>(result.value().front.size()));
      metrics_registry_->histogram("serve_front_hypervolume")
          .record(result.value().front_hypervolume);
    }
  } else {
    ctr_failed_.inc();
  }
  hist_latency_ms_.record(total_ms);
  if (ok) {
    // Copy under the lock, invoke outside it: the hook appends to a
    // provenance log (its own lock) and must not serialize against
    // split-control calls.
    ProvenanceHook hook;
    {
      const std::lock_guard<std::mutex> lock(control_mutex_);
      hook = provenance_hook_;
    }
    if (hook) hook(job.request, result.value());
  }
  if (req_ctx.valid()) {
    obs::SpanRecord req_span;
    req_span.trace = req_ctx.trace;
    req_span.span = req_ctx.span;
    req_span.parent = root_ctx.span;  // 0 locally; the client's span over the wire
    req_span.name = "request";
    req_span.start_ns = enqueue_trace_ns;
    req_span.duration_ns = obs::trace_now_ns() - enqueue_trace_ns;
    req_span.thread = obs::current_thread_ordinal();
    req_span.attrs.emplace_back("model", job.request.model);
    req_span.attrs.emplace_back("ok", ok ? "true" : "false");
    tracer.record(std::move(req_span));
  }
  job.promise.set_value(std::move(result));
}

bool shadow_selected(std::uint64_t fingerprint, double fraction) noexcept {
  if (!(fraction > 0.0)) return false;  // also rejects NaN
  if (fraction >= 1.0) return true;
  // splitmix64 finalizer: the raw fingerprint is already a hash, but mixing
  // again decorrelates the threshold comparison from any structure fnv1a
  // leaves in the low bits.
  std::uint64_t x = fingerprint + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x < static_cast<std::uint64_t>(fraction * 18446744073709551616.0 /* 2^64 */);
}

void CompileService::set_traffic_split(const std::string& model, TrafficSplit split) {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  splits_[model] = std::move(split);
}

void CompileService::clear_traffic_split(const std::string& model) {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  splits_.erase(model);
}

std::optional<TrafficSplit> CompileService::traffic_split(const std::string& model) const {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  const auto it = splits_.find(model);
  if (it == splits_.end()) return std::nullopt;
  return it->second;
}

void CompileService::set_provenance_hook(ProvenanceHook hook) {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  provenance_hook_ = std::move(hook);
}

Result<CompileResponse> CompileService::run_request(const CompileRequest& request,
                                                    PolicyBatcher* batcher) {
  std::shared_ptr<const PolicyArtifact> artifact = registry_->get(request.model, request.version);
  if (artifact == nullptr) {
    return Status::error(strf("unknown model '%s' (version %lld)", request.model.c_str(),
                              static_cast<long long>(request.version)));
  }
  bool canary = false;
  if (request.version <= 0 && request.module != nullptr) {
    const std::optional<TrafficSplit> split = traffic_split(request.model);
    if (split.has_value() &&
        shadow_selected(ir::module_fingerprint(*request.module), split->fraction)) {
      // A split whose canary has not gossiped in yet falls back to the
      // incumbent: shadow serving must never fail traffic it shadows.
      if (auto shadow =
              registry_->get(split->canary_model, static_cast<std::int64_t>(split->canary_version));
          shadow != nullptr) {
        artifact = std::move(shadow);
        canary = true;
      }
    }
  }
  Result<CompileResponse> response = serve_compile(*artifact, request, *eval_, batcher);
  if (response.is_ok()) response.value().provenance.canary = canary;
  return response;
}

Result<CompileResponse> CompileService::compile_sync(const CompileRequest& request) {
  if (request.deadline_ms > 0 &&
      request.deadline_at == std::chrono::steady_clock::time_point{}) {
    CompileRequest stamped = request;
    stamped.deadline_at = Clock::now() + std::chrono::milliseconds(request.deadline_ms);
    return run_request(stamped, nullptr);
  }
  return run_request(request, nullptr);
}

Result<WarmupReport> CompileService::warm_up_model(const std::string& name,
                                                   std::int64_t version) {
  const std::shared_ptr<const PolicyArtifact> artifact = registry_->get(name, version);
  if (artifact == nullptr) {
    return Status::error(strf("warm-up: unknown model '%s' (version %lld)", name.c_str(),
                              static_cast<long long>(version)));
  }
  return warm_up(*artifact, *eval_);
}

CompileService::ResponseFuture CompileService::rejected_future() {
  ctr_rejected_.inc();
  std::promise<Result<CompileResponse>> promise;
  promise.set_value(Status::error("rejected: compile service is shut down"));
  return promise.get_future();
}

CompileService::ResponseFuture CompileService::enqueue_locked(
    CompileRequest request, std::unique_lock<std::mutex>& lock) {
  Job job;
  job.request = std::move(request);
  if (job.request.deadline_ms > 0 &&
      job.request.deadline_at == std::chrono::steady_clock::time_point{}) {
    // Admission stamps the relative wire deadline into an absolute one; a
    // deadline_at already set (a local caller that stamped its own) is kept.
    job.request.deadline_at =
        Clock::now() + std::chrono::milliseconds(job.request.deadline_ms);
  }
  job.sequence = next_sequence_++;
  job.enqueued = Clock::now();
  job.depth_at_entry = queue_.size();  // jobs ahead of this one (span attr)
  ResponseFuture future = job.promise.get_future();
  queue_.push_back(std::move(job));
  std::push_heap(queue_.begin(), queue_.end(), JobOrder{});
  const std::size_t depth = queue_.size();
  lock.unlock();
  queue_cv_.notify_one();
  gauge_queue_depth_.set(static_cast<double>(depth));
  gauge_max_queue_depth_.update_max(static_cast<double>(depth));
  return future;
}

CompileService::ResponseFuture CompileService::shed_locked(
    CompileRequest request, std::unique_lock<std::mutex>& lock) {
  // Victim selection: the cheapest-to-retry queued job — lowest priority,
  // youngest within it. It has waited least, so retrying it elsewhere wastes
  // the least already-spent queue time; a retry of the oldest job would also
  // be the most likely to shed again.
  std::size_t victim = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (victim == queue_.size() ||
        queue_[i].request.priority < queue_[victim].request.priority ||
        (queue_[i].request.priority == queue_[victim].request.priority &&
         queue_[i].sequence > queue_[victim].sequence)) {
      victim = i;
    }
  }
  if (victim < queue_.size() && request.priority > queue_[victim].request.priority) {
    Job shed = std::move(queue_[victim]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
    std::make_heap(queue_.begin(), queue_.end(), JobOrder{});
    ResponseFuture future = enqueue_locked(std::move(request), lock);  // releases lock
    ctr_shed_overload_.inc();
    ctr_failed_.inc();
    shed.promise.set_value(Status::error(
        "overloaded: shed from a saturated queue by a higher-priority request; retry"));
    return future;
  }
  lock.unlock();
  ctr_shed_overload_.inc();
  ctr_rejected_.inc();
  std::promise<Result<CompileResponse>> bounced;
  bounced.set_value(Status::error(
      strf("overloaded: queue at capacity %zu; retry on another node",
           config_.queue_capacity)));
  return bounced.get_future();
}

CompileService::ResponseFuture CompileService::submit(CompileRequest request) {
  // Requests get their trace identity at the door (a no-op invalid context
  // when tracing is off); a context already present — a remote client's,
  // arrived over the wire — is kept so the trace stitches across nodes.
  if (!request.trace.valid()) request.trace = obs::tracer().begin_trace();
  std::unique_lock<std::mutex> lock(mutex_);
  if (config_.shed_on_saturation && !stopping_ &&
      queue_.size() >= config_.queue_capacity) {
    return shed_locked(std::move(request), lock);
  }
  // Backpressure: a full queue blocks the submitter instead of growing.
  space_cv_.wait(lock,
                 [this] { return stopping_ || queue_.size() < config_.queue_capacity; });
  if (stopping_) {
    lock.unlock();
    return rejected_future();
  }
  return enqueue_locked(std::move(request), lock);
}

std::optional<CompileService::ResponseFuture> CompileService::try_submit(
    CompileRequest request) {
  if (!request.trace.valid()) request.trace = obs::tracer().begin_trace();
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ || queue_.size() >= config_.queue_capacity) {
    lock.unlock();
    ctr_rejected_.inc();
    return std::nullopt;
  }
  return enqueue_locked(std::move(request), lock);
}

std::size_t CompileService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ServeMetrics CompileService::metrics() const {
  ServeMetrics m;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    m.queue_depth = queue_.size();
  }
  m.completed = ctr_completed_.value();
  m.failed = ctr_failed_.value();
  m.rejected = ctr_rejected_.value();
  m.cancelled = ctr_cancelled_.value();
  m.shed_overload = ctr_shed_overload_.value();
  m.shed_deadline = ctr_shed_deadline_.value();
  m.max_queue_depth = static_cast<std::size_t>(gauge_max_queue_depth_.value());
  m.latency_hist = hist_latency_ms_.snapshot();
  m.latency = latency_view(m.latency_hist);
  m.wall_seconds = static_cast<double>(nanos_between(started_, Clock::now())) / 1e9;
  m.throughput_rps =
      m.wall_seconds > 0 ? static_cast<double>(m.completed) / m.wall_seconds : 0.0;
  // The per-model breakdown is the labelled counter family read back; the
  // registry orders keys deterministically, and completed/failed rows of the
  // same (model, version) fold into one entry.
  std::map<std::pair<std::string, std::uint32_t>, ModelVersionStats> per_model;
  for (const auto& [key, value] : metrics_registry_->counters("serve_model_requests")) {
    std::string model;
    std::uint32_t version = 0;
    bool completed = false;
    for (const auto& [label, label_value] : key.labels) {
      if (label == "model") model = label_value;
      if (label == "version") {
        version = static_cast<std::uint32_t>(std::strtoul(label_value.c_str(), nullptr, 10));
      }
      if (label == "outcome") completed = label_value == "completed";
    }
    ModelVersionStats& row = per_model[{model, version}];
    row.model = model;
    row.version = version;
    (completed ? row.completed : row.failed) += value;
  }
  m.per_model.reserve(per_model.size());
  for (auto& [key, row] : per_model) m.per_model.push_back(std::move(row));
  for (const auto& [key, value] :
       metrics_registry_->counters("serve_objective_completed")) {
    for (std::size_t i = 0; i < kNumObjectives; ++i) {
      if (!key.labels.empty() &&
          key.labels.front().second == objective_name(static_cast<Objective>(i))) {
        m.objective_completed[i] = value;
      }
    }
  }
  m.batcher = batcher_.stats();
  return m;
}

}  // namespace autophase::serve
