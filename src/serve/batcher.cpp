#include "serve/batcher.hpp"

#include <algorithm>

#include "ml/matrix.hpp"

namespace autophase::serve {

std::vector<double> PolicyBatcher::infer(const PolicyArtifact& artifact,
                                         const std::vector<double>& observation) {
  return infer_many(artifact, {observation})[0];
}

std::vector<std::vector<double>> PolicyBatcher::infer_many(
    const PolicyArtifact& artifact, const std::vector<std::vector<double>>& observations,
    std::size_t* batch_rows, std::uint64_t group_key,
    std::chrono::steady_clock::time_point deadline_at) {
  if (observations.empty()) {
    if (batch_rows != nullptr) *batch_rows = 0;
    return {};
  }
  std::vector<Pending> slots(observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i) {
    slots[i].artifact = &artifact;
    slots[i].observation = &observations[i];
    slots[i].group_key = group_key;
    slots[i].deadline_at = deadline_at;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto& slot : slots) pending_.push_back(&slot);
  cv_.notify_all();

  const auto mine_done = [&slots] {
    return std::all_of(slots.begin(), slots.end(), [](const Pending& p) { return p.done; });
  };
  while (!mine_done()) {
    if (leader_active_) {
      cv_.wait(lock);
      continue;
    }
    // Leader: gather co-riders, run batches until this call's rows are done,
    // then hand leadership to whoever still waits.
    leader_active_ = true;
    if (config_.window.count() > 0 && pending_.size() < config_.max_batch) {
      // Deadline-aware fold window: wait for co-riders until the configured
      // window ends OR the earliest pending deadline arrives, whichever is
      // first. Under deadline pressure the window shrinks to zero and the
      // batch launches immediately — smaller matmuls beat missed deadlines.
      const auto now = std::chrono::steady_clock::now();
      auto wake_at = now + config_.window;
      bool clamped = false;
      for (const Pending* p : pending_) {
        if (p->deadline_at != std::chrono::steady_clock::time_point{} &&
            p->deadline_at < wake_at) {
          wake_at = std::max(p->deadline_at, now);
          clamped = true;
        }
      }
      if (clamped) ++stats_.window_clamps;
      if (wake_at > now) {
        cv_.wait_until(lock, wake_at,
                       [this] { return pending_.size() >= config_.max_batch; });
      }
    }
    while (!pending_.empty() && !mine_done()) {
      const std::size_t take = std::min(pending_.size(), config_.max_batch);
      std::vector<Pending*> batch(pending_.begin(),
                                  pending_.begin() + static_cast<std::ptrdiff_t>(take));
      pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(take));
      lock.unlock();
      run_batch(batch);  // fills logits; completion is published under the lock
      lock.lock();
      for (Pending* p : batch) p->done = true;
      cv_.notify_all();
    }
    leader_active_ = false;
    cv_.notify_all();
  }
  std::vector<std::vector<double>> out;
  out.reserve(slots.size());
  std::size_t rode = 0;
  for (auto& slot : slots) {
    rode = std::max(rode, slot.batch_rows);
    out.push_back(std::move(slot.logits));
  }
  if (batch_rows != nullptr) *batch_rows = rode;
  return out;
}

void PolicyBatcher::run_batch(std::vector<Pending*> batch) {
  // One forward per distinct model in the batch, rows in arrival order.
  std::vector<bool> grouped(batch.size(), false);
  std::uint64_t groups = 0;
  std::size_t max_rows = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (grouped[i]) continue;
    std::vector<std::size_t> members;
    for (std::size_t j = i; j < batch.size(); ++j) {
      if (!grouped[j] && batch[j]->artifact == batch[i]->artifact &&
          batch[j]->group_key == batch[i]->group_key) {
        grouped[j] = true;
        members.push_back(j);
      }
    }
    // Gather the group's rows into one flat staging buffer the network
    // adopts directly — no per-row vectors, no second stacking copy.
    const std::size_t width = batch[i]->artifact->policy.config().input;
    std::vector<double> rows(members.size() * width);
    for (std::size_t k = 0; k < members.size(); ++k) {
      const std::vector<double>& obs = *batch[members[k]]->observation;
      assert(obs.size() == width);
      std::copy(obs.begin(), obs.end(), rows.begin() + static_cast<std::ptrdiff_t>(k * width));
    }
    const ml::Matrix logits =
        batch[i]->artifact->policy.forward_batch(std::move(rows), members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      batch[members[k]]->logits.assign(logits.row(k), logits.row(k) + logits.cols());
      batch[members[k]]->batch_rows = members.size();
    }
    ++groups;
    max_rows = std::max(max_rows, members.size());
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.batches += groups;
  stats_.rows += batch.size();
  stats_.max_batch_rows = std::max(stats_.max_batch_rows, max_rows);
}

BatcherStats PolicyBatcher::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace autophase::serve
