// Fleet-wide observability: one place that answers "what is the cluster
// doing?". A FleetMonitor fans kStats requests out through a
// RemoteCompileClient, decodes every node's versioned counters, and merges
// them into a FleetStats snapshot — counters are summed, latency percentiles
// come from *bucket-summed* per-node histograms (averaging per-node p95s is
// statistically meaningless; summing identically-specced buckets is exact,
// order-independent, and O(buckets) on the wire with no truncation), and
// per-model-version / per-objective breakdowns are summed key-wise so a
// rollout's traffic split is visible fleet-wide. Snapshots are versioned:
// each poll() increments a monotonic id, so two observers can order the
// snapshots they hold.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "serve/compile_service.hpp"
#include "serve/remote_client.hpp"

namespace autophase::serve {

/// One node's slice of a fleet snapshot. An unreachable node keeps its slot
/// (index == client node index) with `reachable == false` and the transport
/// error — a monitor must report a dead node, not silently shrink the fleet.
struct FleetNodeReport {
  net::RemoteEndpoint endpoint;
  bool reachable = false;
  std::string error;     // transport/decode failure when unreachable
  net::NodeStats stats;  // meaningful only when reachable
};

struct FleetStats {
  /// Monotonic per monitor instance; later polls have larger versions.
  std::uint64_t snapshot_version = 0;
  std::size_t nodes = 0;
  std::size_t reachable = 0;
  /// nodes - reachable, split out so operators never re-derive it. Per-node
  /// *rates* divide by `reachable`, never by the configured fleet size — a
  /// half-dead fleet must not report a halved per-node load as healthy.
  std::size_t nodes_unreachable = 0;

  // Summed serving counters across reachable nodes.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t queue_depth = 0;
  /// Overload-control sheds (v6 kStats), summed across reachable nodes:
  /// queue-saturation sheds and deadline-expired-while-queued sheds.
  std::uint64_t shed_overload = 0;
  std::uint64_t shed_deadline = 0;
  /// completed / reachable — mean serving load per *responding* node.
  double completed_per_reachable = 0.0;

  // Summed EvalService counters (the fleet's "Samples" economy).
  std::uint64_t eval_hits = 0;
  std::uint64_t eval_misses = 0;
  std::uint64_t eval_sequence_hits = 0;
  std::uint64_t eval_primed = 0;

  /// Registry sizes: min == max on a converged fleet; a spread means some
  /// node is missing versions and gossip has not repaired it yet.
  std::uint64_t models_min = 0;
  std::uint64_t models_max = 0;

  /// Gossip health: anti-entropy rounds and blobs pulled, summed across
  /// reachable nodes, plus the *stalest* reachable node's last-sync age —
  /// net::kNeverSynced when some reachable node has never completed a pull,
  /// on fleets running without gossip, and on snapshots with zero reachable
  /// nodes, so a wedged gossip loop (or a dead fleet) shows up as unbounded
  /// staleness, never as a healthy-looking zero.
  std::uint64_t gossip_rounds = 0;
  std::uint64_t gossip_fetched = 0;
  std::uint64_t last_sync_age_ms_max = net::kNeverSynced;

  /// Membership consensus across reachable nodes (v6 kStats): the minimum
  /// alive count (the most pessimistic node's view) and the maximum
  /// suspect/dead counts. A converged healthy fleet reports
  /// members_alive_min == fleet size and zeros for the other two.
  std::uint64_t members_alive_min = 0;
  std::uint64_t members_suspect_max = 0;
  std::uint64_t members_dead_max = 0;

  /// Online-learning loop health, summed across reachable nodes: promotion
  /// decisions recorded (kCanary controls) and the provenance backlog a
  /// collector has yet to drain / has already lost to bounded logs.
  std::uint64_t learn_promoted = 0;
  std::uint64_t learn_rolled_back = 0;
  std::uint64_t provenance_pending = 0;
  std::uint64_t provenance_dropped = 0;

  /// Bucket-wise sum of every reachable node's latency histogram, and the
  /// latency_view() quantiles over it. `latency_samples` is the merged
  /// histogram's total count (every request the fleet ever served).
  obs::HistogramSnapshot latency_hist;
  LatencyQuantiles latency;
  std::size_t latency_samples = 0;

  /// Key-wise sums over nodes, sorted by (model, version) / objective.
  std::vector<ModelVersionStats> per_model;
  std::array<std::uint64_t, kNumObjectives> objective_completed{};

  std::vector<FleetNodeReport> per_node;
};

/// One-line human summary ("nodes 3/3 completed=42 p50=1.2ms p95=3.4ms ...")
/// for demo output and CI job logs.
std::string fleet_summary(const FleetStats& stats);

class FleetMonitor {
 public:
  explicit FleetMonitor(std::shared_ptr<RemoteCompileClient> client);

  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// Queries every node (concurrently — a slow node delays the snapshot by
  /// one timeout, not one timeout per node) and merges the replies. Never
  /// fails as a whole: unreachable nodes are reported per-node.
  FleetStats poll();

  /// The most recent snapshot (empty, version 0, before the first poll).
  [[nodiscard]] FleetStats last() const;

 private:
  std::shared_ptr<RemoteCompileClient> client_;

  mutable std::mutex mutex_;
  std::uint64_t next_version_ = 1;
  FleetStats last_;
};

}  // namespace autophase::serve
