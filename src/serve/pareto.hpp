// Multi-objective Pareto serving (POSET-RL direction): dominance over
// (cycles, area, ir_size), bounded nondominated fronts, and the exact 3D
// hypervolume used by metrics and the bench gate. A request opts in with an
// ObjectiveWeights vector; weightless requests never touch this code, which
// is what keeps scalarised serving bit-identical to the pre-Pareto wire.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace autophase::serve {

/// Per-request objective weight vector. All-zero (the default) means "not a
/// Pareto request": the service runs the classic scalar decode and the wire
/// codec emits exactly today's bytes. Any weight > 0 makes that objective
/// *active* — dominance and the scalarised tie-break only ever look at
/// active objectives, so {cycles: 1} degenerates to single-objective
/// serving and {cycles: 1, ir_size: 1} trades the two off.
struct ObjectiveWeights {
  double cycles = 0.0;
  double area = 0.0;
  double ir_size = 0.0;

  [[nodiscard]] bool active() const noexcept {
    return cycles > 0.0 || area > 0.0 || ir_size > 0.0;
  }
  friend bool operator==(const ObjectiveWeights&, const ObjectiveWeights&) = default;
};

/// Stable 64-bit key over the weight bit patterns — the PolicyBatcher
/// grouping key (rows of different objective mixes must not share a batch
/// once value heads become objective-conditioned) and a cheap map key.
[[nodiscard]] std::uint64_t weights_key(const ObjectiveWeights& weights) noexcept;

/// One point on the front: a pass sequence and its measured objectives.
/// `fingerprint` is the optimized module's fingerprint — the deterministic
/// tie-break everywhere two points compare equal on the active objectives.
struct ParetoPoint {
  std::vector<int> sequence;
  std::uint64_t cycles = 0;
  double area = 0.0;
  std::uint64_t ir_size = 0;
  std::uint64_t fingerprint = 0;
};

/// Strict Pareto dominance over the *active* objectives of `weights`:
/// a <= b everywhere and a < b somewhere. Inactive objectives are invisible
/// — with only `cycles` active this is exactly "fewer cycles wins".
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b,
                             const ObjectiveWeights& weights) noexcept;

/// Weighted scalarisation (smaller is better) — the bounded-width eviction
/// order and the representative-point order of a front.
[[nodiscard]] double scalar_score(const ParetoPoint& point,
                                  const ObjectiveWeights& weights) noexcept;

/// Inserts `point` into a nondominated `front`, keeping the invariant:
///   * dominated by any member -> rejected (returns false);
///   * equal to a member on every active objective -> the smaller
///     fingerprint survives (duplicate sequences reaching one IR collapse
///     deterministically);
///   * otherwise inserted, members it dominates are pruned, and when the
///     front exceeds `max_width` the worst scalar_score (tie-break: larger
///     fingerprint) is evicted — which may be the new point itself.
/// Returns true when the point is in the front on exit.
bool front_insert(std::vector<ParetoPoint>& front, ParetoPoint point,
                  const ObjectiveWeights& weights, std::size_t max_width);

/// True when no member dominates (or duplicates) another — the invariant
/// front_insert maintains; exposed so tests, the demo, and the bench can
/// verify a served front rather than trust it.
[[nodiscard]] bool is_nondominated(std::span<const ParetoPoint> front,
                                   const ObjectiveWeights& weights) noexcept;

/// Canonical order: scalar_score ascending, fingerprint ascending. front[0]
/// is the representative point (what a scalar request would have returned);
/// the wire encodes fronts in this order so bytes are insertion-order-free.
void sort_front(std::vector<ParetoPoint>& front, const ObjectiveWeights& weights);

/// Exact hypervolume of `front` against `reference` (the unoptimised
/// baseline measurement), over the active objectives, with each dimension
/// normalised by the reference value — so the result lives in [0, 1]^d
/// volume units and is comparable across programs. Points not strictly
/// better than the reference in every active dimension contribute nothing.
/// Coordinate-compressed union-of-boxes; exact for the front widths serving
/// uses (O(n^4) worst case, n <= front width).
[[nodiscard]] double hypervolume(std::span<const ParetoPoint> front, const ParetoPoint& reference,
                                 const ObjectiveWeights& weights) noexcept;

}  // namespace autophase::serve
