// Cross-request policy-inference batching. Serving workers blocked in
// infer()/infer_many() are collected by a leader (the first arrival), their
// observations stacked per model into one matrix and pushed through a single
// ml::Mlp::forward_batch — concurrent requests share one matmul. Because each
// output row of a forward pass is an independent dot-product chain, the
// logits a request sees are bit-identical whether its observation ran alone
// or folded into a batch of 16: batching changes latency and throughput,
// never answers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/artifact.hpp"

namespace autophase::serve {

struct BatcherConfig {
  /// Rows folded into one forward pass at most.
  std::size_t max_batch = 16;
  /// How long the leader waits for co-riders before launching a partial
  /// batch. Zero disables the wait (each arrival batch = whatever is queued).
  std::chrono::microseconds window{200};
};

struct BatcherStats {
  std::uint64_t batches = 0;        // forward_batch calls
  std::uint64_t rows = 0;           // observations inferred
  std::size_t max_batch_rows = 0;   // largest single batch
  /// Deadline-aware batching: times the leader's fold window was cut short
  /// because a pending request's deadline was nearer than the window end.
  std::uint64_t window_clamps = 0;
};

class PolicyBatcher {
 public:
  explicit PolicyBatcher(BatcherConfig config = {}) : config_(config) {}

  PolicyBatcher(const PolicyBatcher&) = delete;
  PolicyBatcher& operator=(const PolicyBatcher&) = delete;

  /// Policy logits for one observation (blocking; may ride a shared batch).
  std::vector<double> infer(const PolicyArtifact& artifact,
                            const std::vector<double>& observation);

  /// Logits for several observations of one model (a beam front submits all
  /// its rows at once so they batch with each other as well as with other
  /// requests). Result i corresponds to observations[i]. When `batch_rows` is
  /// non-null it reports the largest same-model batch any of these rows rode
  /// in — the trace attribute that shows whether a request actually shared a
  /// matmul or ran alone. `group_key` partitions batches beyond the model:
  /// rows only fold with rows of the same (artifact, group_key) — the serve
  /// path passes weights_key(request.weights), so objective mixes never share
  /// a batch (today that changes nothing numerically; it is the seam where
  /// objective-conditioned value heads plug in). `deadline_at` (time_point{}
  /// = none) makes the batching deadline-aware: a leader never holds the
  /// fold window open past the earliest pending deadline, so co-riding can
  /// cost a request throughput headroom but never its deadline.
  std::vector<std::vector<double>> infer_many(
      const PolicyArtifact& artifact, const std::vector<std::vector<double>>& observations,
      std::size_t* batch_rows = nullptr, std::uint64_t group_key = 0,
      std::chrono::steady_clock::time_point deadline_at = {});

  [[nodiscard]] BatcherStats stats() const;

 private:
  struct Pending {
    const PolicyArtifact* artifact = nullptr;
    const std::vector<double>* observation = nullptr;
    std::uint64_t group_key = 0;  // objective-weights partition within a model
    std::chrono::steady_clock::time_point deadline_at{};  // {} = no deadline
    std::vector<double> logits;
    std::size_t batch_rows = 0;  // size of the same-model batch this row rode
    bool done = false;
  };

  /// Executes one batch (outside the queue lock), fulfilling every entry.
  void run_batch(std::vector<Pending*> batch);

  BatcherConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Pending*> pending_;
  bool leader_active_ = false;
  BatcherStats stats_;
};

}  // namespace autophase::serve
