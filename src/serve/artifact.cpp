#include "serve/artifact.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ir/printer.hpp"

namespace autophase::serve {

void FeatureNormalizer::apply(std::vector<double>& observation) const {
  if (identity()) return;
  assert(mean.size() == inv_std.size());
  const std::size_t n = std::min(observation.size(), mean.size());
  for (std::size_t i = 0; i < n; ++i) {
    observation[i] = (observation[i] - mean[i]) * inv_std[i];
  }
}

FeatureNormalizer FeatureNormalizer::fit(const std::vector<std::vector<double>>& observations) {
  FeatureNormalizer out;
  if (observations.empty()) return out;
  const std::size_t d = observations[0].size();
  const double n = static_cast<double>(observations.size());
  out.mean.assign(d, 0.0);
  out.inv_std.assign(d, 1.0);
  for (const auto& row : observations) {
    for (std::size_t i = 0; i < d; ++i) out.mean[i] += row[i];
  }
  for (double& m : out.mean) m /= n;
  std::vector<double> var(d, 0.0);
  for (const auto& row : observations) {
    for (std::size_t i = 0; i < d; ++i) {
      const double delta = row[i] - out.mean[i];
      var[i] += delta * delta;
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    out.inv_std[i] = 1.0 / std::max(std::sqrt(var[i] / n), 1e-9);
  }
  return out;
}

ObservationSpec spec_of(const rl::EnvConfig& config) {
  ObservationSpec spec;
  spec.episode_length = config.episode_length;
  spec.observation = config.observation;
  spec.normalization = config.normalization;
  spec.include_terminate = config.include_terminate;
  spec.log_reward = config.log_reward;
  spec.feature_subset = config.feature_subset;
  spec.action_subset = config.action_subset;
  return spec;
}

rl::EnvConfig env_config_of(const ObservationSpec& spec) {
  rl::EnvConfig config;
  config.episode_length = spec.episode_length;
  config.observation = spec.observation;
  config.normalization = spec.normalization;
  config.include_terminate = spec.include_terminate;
  config.log_reward = spec.log_reward;
  config.feature_subset = spec.feature_subset;
  config.action_subset = spec.action_subset;
  return config;
}

PolicyArtifact make_artifact(const rl::PolicyExport& exported, const rl::EnvConfig& env_config,
                             FeatureNormalizer normalizer) {
  assert(exported.policy != nullptr);
  PolicyArtifact artifact{.name = {},
                          .version = 0,
                          .spec = spec_of(env_config),
                          .action_groups = exported.action_groups,
                          .action_arity = exported.action_arity,
                          .policy = *exported.policy,
                          .value = std::nullopt,
                          .forest = std::nullopt,
                          .normalizer = std::move(normalizer)};
  if (exported.value != nullptr) artifact.value = *exported.value;
  return artifact;
}

std::vector<CorpusBaseline> collect_baselines(const std::vector<const ir::Module*>& corpus,
                                              runtime::EvalService& eval) {
  std::vector<CorpusBaseline> baselines;
  baselines.reserve(corpus.size());
  for (const ir::Module* program : corpus) {
    if (program == nullptr) continue;
    const runtime::Measure m = eval.measure(*program);
    baselines.push_back({ir::module_fingerprint(*program), m.cycles, m.area});
  }
  return baselines;
}

void attach_baselines(PolicyArtifact& artifact, const std::vector<const ir::Module*>& corpus,
                      runtime::EvalService& eval) {
  artifact.baselines = collect_baselines(corpus, eval);
  artifact.baselines_config = eval.config_fingerprint();
}

}  // namespace autophase::serve
