#include "serve/remote_client.hpp"

#include <algorithm>
#include <unordered_map>

#include "ir/printer.hpp"
#include "obs/trace.hpp"
#include "serve/serialization.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"

namespace autophase::serve {

namespace {

bool is_timeout(const Status& status) {
  return status.message().find("deadline exceeded") != std::string::npos;
}

}  // namespace

RemoteCompileClient::RemoteCompileClient(std::vector<net::RemoteEndpoint> nodes,
                                         RemoteClientConfig config)
    : nodes_(std::move(nodes)),
      config_(config),
      idle_(nodes_.size()),
      health_(nodes_.size()),
      ctr_requests_(metrics_.counter("client_requests")),
      ctr_failures_(metrics_.counter("client_failures")),
      ctr_timeouts_(metrics_.counter("client_timeouts")),
      ctr_connects_(metrics_.counter("client_connects")),
      ctr_rerouted_(metrics_.counter("client_rerouted")),
      ctr_overloaded_(metrics_.counter("client_overloaded")) {
  // Ring points are derived from the endpoint identity, so every client
  // instance routes identically — cache affinity survives client restarts.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const std::string key = nodes_[n].host + ":" + std::to_string(nodes_[n].port);
    for (std::size_t v = 0; v < std::max<std::size_t>(1, config_.virtual_nodes); ++v) {
      ring_.emplace_back(fnv1a(key + "#" + std::to_string(v)), n);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t RemoteCompileClient::route_fingerprint(std::uint64_t fingerprint) const {
  if (ring_.empty()) return 0;
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(fingerprint, std::size_t{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

std::size_t RemoteCompileClient::route(const ir::Module& module) const {
  return route_fingerprint(ir::module_fingerprint(module));
}

// ---------------------------------------------------------------------------
// Endpoint health
// ---------------------------------------------------------------------------

bool RemoteCompileClient::suppressed_locked(
    std::size_t node, std::chrono::steady_clock::time_point now) const {
  const EndpointHealth& h = health_[node];
  return h.dead || h.backoff_until > now;
}

bool RemoteCompileClient::suppressed(std::size_t node) const {
  if (node >= health_.size()) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_locked(node, std::chrono::steady_clock::now());
}

std::size_t RemoteCompileClient::pick_node(std::uint64_t fingerprint) {
  if (ring_.empty() || nodes_.empty()) return 0;
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(fingerprint, std::size_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  const std::size_t primary = it->second;
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    const std::size_t node = it->second;
    if (!suppressed_locked(node, now)) {
      if (node != primary) ctr_rerouted_.inc();
      return node;
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return primary;  // everything suppressed; the primary is the best bad bet
}

void RemoteCompileClient::note_result(std::size_t node, bool ok, bool overloaded) {
  if (node >= health_.size()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  EndpointHealth& h = health_[node];
  if (ok) {
    h.consecutive_failures = 0;
    h.backoff_until = {};
    return;
  }
  ++h.consecutive_failures;
  // An overload bounce is the node's own word that it needs relief — back
  // off after one; plain failures need backoff_after_failures in a row
  // before the endpoint loses its ring keys.
  const std::size_t threshold =
      overloaded ? 1 : std::max<std::size_t>(1, config_.backoff_after_failures);
  if (h.consecutive_failures < threshold) return;
  const std::size_t excess = h.consecutive_failures - threshold;
  auto backoff = config_.backoff_initial;
  for (std::size_t i = 0; i < excess && backoff < config_.backoff_max; ++i) backoff *= 2;
  h.backoff_until = std::chrono::steady_clock::now() + std::min(backoff, config_.backoff_max);
}

void RemoteCompileClient::mark_dead(const net::RemoteEndpoint& endpoint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].port != endpoint.port || nodes_[n].host != endpoint.host) continue;
    health_[n].dead = true;
    // Pooled connections to a confirmed-dead node are poison; drop them so a
    // readmitted node starts on fresh sockets.
    idle_[n].clear();
  }
}

void RemoteCompileClient::mark_alive(const net::RemoteEndpoint& endpoint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].port != endpoint.port || nodes_[n].host != endpoint.host) continue;
    health_[n].dead = false;
    health_[n].consecutive_failures = 0;
    health_[n].backoff_until = {};
  }
}

// ---------------------------------------------------------------------------
// Connection pool
// ---------------------------------------------------------------------------

Result<RemoteCompileClient::Lease> RemoteCompileClient::acquire(std::size_t node,
                                                                bool force_fresh) {
  if (node >= nodes_.size()) return Status::error("remote client: node index out of range");
  if (!force_fresh) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_[node].empty()) {
      Lease lease{std::move(idle_[node].back()), node, false};
      idle_[node].pop_back();
      return lease;
    }
  }
  auto stream = net::TcpStream::connect(nodes_[node].host, nodes_[node].port,
                                        config_.connect_timeout);
  if (!stream.is_ok()) return stream.status();
  ctr_connects_.inc();
  return Lease{std::move(stream).value(), node, true};
}

void RemoteCompileClient::release(Lease lease, bool healthy) {
  if (!healthy) {
    lease.stream.shutdown();
    return;  // dropped on scope exit
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (idle_[lease.node].size() < config_.pool_per_node) {
    idle_[lease.node].push_back(std::move(lease.stream));
  }
}

std::uint64_t RemoteCompileClient::next_request_id() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_id_++;
}

void RemoteCompileClient::count_failure(const Status& status) {
  ctr_failures_.inc();
  if (is_timeout(status)) ctr_timeouts_.inc();
  if (is_overloaded(status)) ctr_overloaded_.inc();
}

RemoteClientStats RemoteCompileClient::stats() const {
  RemoteClientStats s;
  s.requests = ctr_requests_.value();
  s.failures = ctr_failures_.value();
  s.timeouts = ctr_timeouts_.value();
  s.connects = ctr_connects_.value();
  s.rerouted = ctr_rerouted_.value();
  s.overloaded = ctr_overloaded_.value();
  return s;
}

// ---------------------------------------------------------------------------
// Exchanges
// ---------------------------------------------------------------------------

Result<net::Frame> RemoteCompileClient::exchange(Lease& lease, const net::Frame& frame,
                                                 net::Deadline deadline) {
  if (const Status s = net::write_frame(lease.stream, frame, deadline); !s.is_ok()) return s;
  for (;;) {
    auto reply = net::read_frame(lease.stream, deadline, config_.max_frame_payload);
    if (!reply.is_ok()) return reply.status();
    if (reply.value().type == net::MsgType::kError) {
      return Status::error(net::decode_status_reply(reply.value().payload).message());
    }
    if (reply.value().request_id == frame.request_id) return reply;
    // A response to a request this lease no longer cares about (e.g. the
    // tail of an aborted pipeline) — skip it and keep reading.
  }
}

Result<CompileResponse> RemoteCompileClient::roundtrip(Lease& lease,
                                                       const CompileRequest& request,
                                                       net::Deadline deadline,
                                                       bool* transport_ok) {
  *transport_ok = false;
  net::Frame frame;
  frame.type = net::MsgType::kCompile;
  frame.request_id = next_request_id();
  frame.payload = net::encode_compile_request(request);
  auto reply = exchange(lease, frame, deadline);
  if (!reply.is_ok()) return reply.status();
  if (reply.value().type == net::MsgType::kOverloaded) {
    // A typed shed bounce: the stream is still on a frame boundary, so the
    // connection stays pooled — only the endpoint's routing weight suffers.
    *transport_ok = true;
    const Status shed = net::decode_status_reply(reply.value().payload);
    return shed.is_ok() ? Status::error("overloaded: shed (no detail carried)") : shed;
  }
  if (reply.value().type != net::MsgType::kCompile) {
    return Status::error("remote client: mismatched reply type");
  }
  auto response = net::decode_compile_response(reply.value().payload);
  // A well-formed reply — success or a remote application error (its status
  // prefix says so) — leaves the stream on a frame boundary and reusable.
  // An undecodable payload does not.
  *transport_ok =
      response.is_ok() || !net::decode_status_reply(reply.value().payload).is_ok();
  return response;
}

Result<CompileResponse> RemoteCompileClient::compile(const CompileRequest& request) {
  return compile(request, config_.request_deadline);
}

Result<CompileResponse> RemoteCompileClient::compile(const CompileRequest& request,
                                                     std::chrono::milliseconds deadline_ms) {
  if (request.module == nullptr) return Status::error("compile request has no module");
  ctr_requests_.inc();
  const std::size_t node = pick_node(ir::module_fingerprint(*request.module));
  // Client-side root span. The traced copy carries this span's context over
  // the wire (the tagged trailer on the compile payload), so the server's
  // "request" span parents under it and client + owning-node spans share one
  // trace id — a remote compile reads as a single stitched trace in Perfetto.
  CompileRequest traced = request;
  if (!traced.trace.valid()) traced.trace = obs::tracer().begin_trace();
  AP_SPAN(span, traced.trace, "remote_compile");
  if (span.armed()) {
    span.attr("node", static_cast<std::uint64_t>(node));
    traced.trace = span.context();
  }
  for (int attempt = 0;; ++attempt) {
    auto lease = acquire(node, /*force_fresh=*/attempt > 0);
    if (!lease.is_ok()) {
      // A refused/timed-out connect is the strongest endpoint-failure signal
      // there is — it must feed the backoff like any in-flight failure.
      count_failure(lease.status());
      note_result(node, false, false);
      return lease.status();
    }
    const bool was_fresh = lease.value().fresh;
    // Only a transport-healthy connection returns to the pool: a deadline
    // expiry leaves the answer in flight, and the stream's next reader would
    // attribute it to the wrong request.
    bool transport_ok = false;
    auto response =
        roundtrip(lease.value(), traced, net::deadline_in(deadline_ms), &transport_ok);
    release(std::move(lease).value(), transport_ok);
    // A pooled connection may have died while idle (node restart between
    // requests); retry exactly once on a fresh one. Timeouts are final: the
    // deadline has been spent, and compiles are deterministic, so nothing
    // else distinguishes the attempts.
    if (!response.is_ok() && !transport_ok && !was_fresh && attempt == 0 &&
        !is_timeout(response.status())) {
      continue;
    }
    // Endpoint failure accounting (satellite of the elastic-fleet work): a
    // deadline expiry used to poison only the pooled connection while the
    // endpoint kept its full ring weight — now every final outcome feeds the
    // backoff that decides whether this node keeps its keys.
    if (!response.is_ok()) {
      count_failure(response.status());
      note_result(node, false, is_overloaded(response.status()));
    } else {
      note_result(node, true, false);
    }
    return response;
  }
}

std::vector<Result<CompileResponse>> RemoteCompileClient::compile_batch(
    const std::vector<CompileRequest>& requests) {
  std::vector<Result<CompileResponse>> results;
  results.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results.emplace_back(Status::error("request not attempted"));
  }
  // Partition by ring routing; each node's share rides one pipeline.
  std::vector<std::vector<std::size_t>> by_node(std::max<std::size_t>(1, nodes_.size()));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].module == nullptr) {
      results[i] = Status::error("compile request has no module");
      continue;
    }
    by_node[pick_node(ir::module_fingerprint(*requests[i].module))].push_back(i);
  }
  ctr_requests_.inc(requests.size());

  for (std::size_t node = 0; node < by_node.size(); ++node) {
    const std::vector<std::size_t>& batch = by_node[node];
    if (batch.empty()) continue;
    for (int attempt = 0;; ++attempt) {
      auto lease = acquire(node, /*force_fresh=*/attempt > 0);
      if (!lease.is_ok()) {
        for (const std::size_t i : batch) results[i] = lease.status();
        break;
      }
      const bool was_fresh = lease.value().fresh;
      bool healthy = true;
      const std::size_t received = run_node_batch(lease.value(), requests, batch, results,
                                                  healthy);
      release(std::move(lease).value(), healthy);
      // Same stale-pool rule as compile(): a pipeline that died before a
      // single response on a pooled connection gets one fresh retry — but a
      // deadline expiry is final (the budget is spent, and the server may
      // still be processing the first copy; re-sending would double-compile).
      const bool timed_out = std::any_of(batch.begin(), batch.end(), [&](std::size_t i) {
        return !results[i].is_ok() && is_timeout(results[i].status());
      });
      if (received == 0 && !healthy && !was_fresh && attempt == 0 && !timed_out) continue;
      break;
    }
    // Per-endpoint accounting on the batch's final outcome: any success
    // clears the streak; a fully-failed share counts one failure (overloaded
    // when any bounce in it was).
    const bool any_ok = std::any_of(batch.begin(), batch.end(),
                                    [&](std::size_t i) { return results[i].is_ok(); });
    const bool any_overloaded = std::any_of(batch.begin(), batch.end(), [&](std::size_t i) {
      return !results[i].is_ok() && is_overloaded(results[i].status());
    });
    note_result(node, any_ok, any_overloaded);
  }
  // Failures are tallied once, on final outcomes (a stale-connection retry
  // that succeeded is not a failure).
  for (const auto& result : results) {
    if (!result.is_ok()) count_failure(result.status());
  }
  return results;
}

std::size_t RemoteCompileClient::run_node_batch(Lease& lease,
                                               const std::vector<CompileRequest>& requests,
                                               const std::vector<std::size_t>& batch,
                                               std::vector<Result<CompileResponse>>& results,
                                               bool& healthy) {
  // The deadline is per request, not per batch: it restarts from every
  // completed frame, so a long pipeline only fails when the *next* answer
  // (or write) stalls for request_deadline — never because the aggregate
  // batch outlived one request's budget.
  net::Deadline deadline = net::deadline_in(config_.request_deadline);
  healthy = true;

  // Write the whole pipeline before reading anything; a failed write aborts
  // the rest (the stream position is unknown past it).
  std::unordered_map<std::uint64_t, std::size_t> in_flight;
  for (const std::size_t i : batch) {
    if (!healthy) {
      results[i] = Status::error("pipeline aborted by earlier write failure");
      continue;
    }
    net::Frame frame;
    frame.type = net::MsgType::kCompile;
    frame.request_id = next_request_id();
    frame.payload = net::encode_compile_request(requests[i]);
    if (const Status s = net::write_frame(lease.stream, frame, deadline); !s.is_ok()) {
      results[i] = s;
      healthy = false;
      continue;
    }
    in_flight.emplace(frame.request_id, i);
    deadline = net::deadline_in(config_.request_deadline);  // progress made
  }

  // Responses may arrive in any order; match them by id.
  std::size_t received = 0;
  while (healthy && !in_flight.empty()) {
    auto reply = net::read_frame(lease.stream, deadline, config_.max_frame_payload);
    Status failure = Status::ok();
    if (!reply.is_ok()) {
      failure = reply.status();
    } else if (reply.value().type == net::MsgType::kError) {
      failure = Status::error(net::decode_status_reply(reply.value().payload).message());
    }
    if (!failure.is_ok()) {
      for (const auto& [id, i] : in_flight) results[i] = failure;
      in_flight.clear();
      healthy = false;
      break;
    }
    const auto it = in_flight.find(reply.value().request_id);
    if (it == in_flight.end()) continue;  // stale tail from a prior lease
    if (reply.value().type == net::MsgType::kOverloaded) {
      // Typed shed bounce for exactly this id; the rest of the pipeline is
      // unaffected and the stream stays on a frame boundary.
      const Status shed = net::decode_status_reply(reply.value().payload);
      results[it->second] =
          shed.is_ok() ? Status::error("overloaded: shed (no detail carried)") : shed;
    } else {
      results[it->second] = net::decode_compile_response(reply.value().payload);
    }
    in_flight.erase(it);
    ++received;
    deadline = net::deadline_in(config_.request_deadline);  // progress made
  }
  // A pipeline aborted mid-write leaves responses unread; fail them too.
  for (const auto& [id, i] : in_flight) {
    results[i] = Status::error("pipeline aborted before this response arrived");
  }
  healthy = healthy && in_flight.empty();
  return received;
}

// ---------------------------------------------------------------------------
// Registry operations
// ---------------------------------------------------------------------------

Result<net::Frame> RemoteCompileClient::exchange_op(std::size_t node, const net::Frame& frame) {
  for (int attempt = 0;; ++attempt) {
    auto lease = acquire(node, /*force_fresh=*/attempt > 0);
    if (!lease.is_ok()) return lease.status();
    const bool was_fresh = lease.value().fresh;
    auto reply = exchange(lease.value(), frame, net::deadline_in(config_.request_deadline));
    release(std::move(lease).value(), reply.is_ok());
    // Stale-pooled-connection retry, as in compile(). Publish is the one
    // non-idempotent op here, but a *transport* failure on a pooled lease
    // happens before the server saw anything — the write landed in a dead
    // socket — so the single retry cannot double-publish.
    if (!reply.is_ok() && !was_fresh && attempt == 0 && !is_timeout(reply.status())) continue;
    return reply;
  }
}

Result<net::PublishReply> RemoteCompileClient::publish(std::size_t node, const std::string& name,
                                                       const PolicyArtifact& artifact) {
  net::Frame frame;
  frame.type = net::MsgType::kPublish;
  frame.request_id = next_request_id();
  frame.payload = net::encode_publish_request(name, serialize_artifact(artifact));
  auto reply = exchange_op(node, frame);
  if (!reply.is_ok()) return reply.status();
  // Partial success (version assigned, some peers missed) is success with
  // peer_failures set — discarding the version would leave the caller
  // unable to reconcile, and retrying would mint a duplicate.
  return net::decode_publish_reply(reply.value().payload);
}

Result<std::vector<net::ModelSummary>> RemoteCompileClient::list_models(std::size_t node) {
  net::Frame frame;
  frame.type = net::MsgType::kListModels;
  frame.request_id = next_request_id();
  auto reply = exchange_op(node, frame);
  if (!reply.is_ok()) return reply.status();
  return net::decode_model_list(reply.value().payload);
}

Result<net::NodeStats> RemoteCompileClient::node_stats(std::size_t node) {
  net::Frame frame;
  frame.type = net::MsgType::kStats;
  frame.request_id = next_request_id();
  auto reply = exchange_op(node, frame);
  if (!reply.is_ok()) return reply.status();
  return net::decode_node_stats(reply.value().payload);
}

Result<net::ProvenanceBatch> RemoteCompileClient::drain_provenance(std::size_t node,
                                                                   std::uint64_t max_records) {
  net::Frame frame;
  frame.type = net::MsgType::kProvenance;
  frame.request_id = next_request_id();
  frame.payload = net::encode_provenance_request({max_records});
  auto reply = exchange_op(node, frame);
  if (!reply.is_ok()) return reply.status();
  return net::decode_provenance_reply(reply.value().payload);
}

Status RemoteCompileClient::canary_control(std::size_t node, const net::CanaryControl& control) {
  net::Frame frame;
  frame.type = net::MsgType::kCanary;
  frame.request_id = next_request_id();
  frame.payload = net::encode_canary_control(control);
  auto reply = exchange_op(node, frame);
  if (!reply.is_ok()) return reply.status();
  return net::decode_status_reply(reply.value().payload);
}

Result<std::string> RemoteCompileClient::node_metrics(std::size_t node) {
  net::Frame frame;
  frame.type = net::MsgType::kMetrics;
  frame.request_id = next_request_id();
  auto reply = exchange_op(node, frame);
  if (!reply.is_ok()) return reply.status();
  if (reply.value().type != net::MsgType::kMetrics) {
    return Status::error("remote client: mismatched reply type");
  }
  return net::decode_metrics_reply(reply.value().payload);
}

}  // namespace autophase::serve
