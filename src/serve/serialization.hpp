// Versioned binary serialization for trained artifacts, so training and
// serving are separate processes: a trainer exports a PolicyArtifact blob,
// the serving fleet imports it into its ModelRegistry. The format is
// little-endian, length-prefixed, framed with a magic + format version and
// an FNV-1a payload checksum, and round-trips every weight bit-exactly
// (doubles travel as their raw 64-bit patterns).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/artifact.hpp"
#include "support/status.hpp"

namespace autophase::serve {

/// Bumped whenever the payload layout changes; readers reject newer formats.
///
/// v1  the mandatory artifact body (spec, nets, normalizer).
/// v2  v1 body + a table of versioned optional sections, each length-
///     prefixed and tagged so readers skip tags they do not know. Writers
///     emit v1 whenever no optional section is present, so artifacts without
///     extras stay bit-identical to pre-v2 blobs and old readers keep
///     accepting them.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Optional-section tags (format v2). New sections append new tags; tag
/// values are never reused.
enum class ArtifactSection : std::uint32_t {
  kCorpusBaselines = 1,  // training-corpus measures for EvalService warm-up
};

/// Little-endian append-only byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  /// Raw IEEE-754 bit pattern — bit-exact round trip, NaNs included.
  void f64(double v);
  void str(std::string_view v);
  void f64_vec(const std::vector<double>& v);
  void i32_vec(const std::vector<int>& v);

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a serialized blob. Out-of-bounds or oversized
/// reads set a sticky error flag (and return zero values) instead of
/// throwing — callers check ok() once per decoded unit.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  double f64();
  std::string str();
  std::vector<double> f64_vec();
  std::vector<int> i32_vec();

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  /// Guards length prefixes against truncated/corrupt blobs: a count may
  /// never promise more payload (or more loop iterations) than bytes remain.
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  bool take(void* out, std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Component codecs (shared by the artifact format and future snapshots) ----
void write_mlp(ByteWriter& w, const ml::Mlp& net);
Result<ml::Mlp> read_mlp(ByteReader& r);
void write_forest(ByteWriter& w, const ml::RandomForest& forest);
Result<ml::RandomForest> read_forest(ByteReader& r);
void write_normalizer(ByteWriter& w, const FeatureNormalizer& normalizer);
Result<FeatureNormalizer> read_normalizer(ByteReader& r);

// ---- Artifact framing ----
std::string serialize_artifact(const PolicyArtifact& artifact);
Result<PolicyArtifact> deserialize_artifact(std::string_view bytes);

Status save_artifact_file(const PolicyArtifact& artifact, const std::string& path);
Result<PolicyArtifact> load_artifact_file(const std::string& path);

}  // namespace autophase::serve
