// Thread-safe versioned model store, the hand-off point between training and
// serving. publish() assigns monotonically increasing versions per name;
// get() hands out immutable shared snapshots, so a model can be upgraded
// under live traffic while in-flight requests keep serving the version they
// resolved. Binary export/import (serve/serialization.hpp) moves models
// between processes with their name + version identity intact.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/artifact.hpp"
#include "support/status.hpp"

namespace autophase::serve {

class ModelRegistry {
 public:
  struct ModelKey {
    std::string name;
    std::uint32_t version = 0;
  };

  /// Stores the artifact under `name` with the next version number (1-based)
  /// and returns that version. The artifact's name/version fields are
  /// stamped accordingly.
  std::uint32_t publish(const std::string& name, PolicyArtifact artifact);

  /// Immutable snapshot; version <= 0 selects the latest. Null when the
  /// name/version is unknown.
  [[nodiscard]] std::shared_ptr<const PolicyArtifact> get(const std::string& name,
                                                          std::int64_t version = 0) const;

  [[nodiscard]] std::vector<ModelKey> list() const;
  /// Total artifacts across all names and versions.
  [[nodiscard]] std::size_t size() const;

  // ---- Binary transport between processes ----
  [[nodiscard]] Result<std::string> export_model(const std::string& name,
                                                 std::int64_t version = 0) const;
  /// Installs a serialized artifact under its embedded name + version
  /// (overwriting that exact version if present, so re-imports are
  /// idempotent). Later publishes continue above the imported version.
  Result<ModelKey> import_model(std::string_view bytes);

  Status export_file(const std::string& name, std::int64_t version,
                     const std::string& path) const;
  Result<ModelKey> import_file(const std::string& path);

  /// Called after every successful publish/import with the installed
  /// snapshot, outside the registry lock (the hook may call back into the
  /// registry). One hook per registry — the serving node that owns it wires
  /// model warm-up here, so replicated and caught-up artifacts warm exactly
  /// like locally published ones.
  using InstallHook = std::function<void(const std::shared_ptr<const PolicyArtifact>&)>;
  void set_install_hook(InstallHook hook);

 private:
  void notify_installed(const std::shared_ptr<const PolicyArtifact>& artifact);

  mutable std::mutex mutex_;
  InstallHook install_hook_;  // guarded by mutex_; copied out before invoking
  /// name -> version -> artifact (ordered so rbegin() is the latest).
  std::unordered_map<std::string, std::map<std::uint32_t, std::shared_ptr<const PolicyArtifact>>>
      models_;
};

}  // namespace autophase::serve
