// Fleet control-plane harness: brings up a three-node serving fleet, has a
// late joiner catch up over kSyncRequest/kSyncOffer, routes a request wave
// across the ring, and measures the FleetMonitor's merged view. The
// request-identity invariant — per-node completions summing to exactly the
// client-observed total — is asserted and reported as `counts_consistent`,
// which the CI bench-regression gate checks alongside throughput. Output is
// JSON for the bench-trajectory artifact.
//
//   ./bench/fleet_stats [--full] [--seed N] [--requests N] [--workers N]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench/bench_util.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "serve/fleet_monitor.hpp"
#include "serve/remote_client.hpp"

namespace autophase {
namespace {

int run(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  std::size_t workers = 2;
  std::size_t requests = args.full ? 96 : 24;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }

  const auto& names = progen::chstone_benchmark_names();
  std::vector<std::unique_ptr<ir::Module>> modules;
  for (std::size_t i = 0; i < 4; ++i) {
    modules.push_back(progen::build_chstone_like(names[i % names.size()]));
  }

  rl::EnvConfig env_cfg;
  env_cfg.observation = rl::ObservationMode::kActionHistogram;
  env_cfg.episode_length = args.full ? 8 : 4;
  rl::PhaseOrderEnv env({modules[0].get()}, env_cfg);
  rl::PpoConfig ppo;
  ppo.hidden = {32};
  ppo.seed = args.seed;
  const rl::PpoTrainer trainer(env, ppo);

  runtime::EvalService corpus_eval;

  // Two seed nodes; publishes through A replicate to B.
  net::ServeNodeConfig node_cfg;
  node_cfg.compile.workers = workers;
  node_cfg.compile.queue_capacity = std::max<std::size_t>(requests, 16);
  net::ServeNode node_a(nullptr, nullptr, node_cfg);
  net::ServeNode node_b(nullptr, nullptr, node_cfg);
  if (!node_a.start().is_ok() || !node_b.start().is_ok()) {
    std::fprintf(stderr, "seed nodes failed to start\n");
    return 1;
  }
  node_a.add_peer(node_b.endpoint());
  serve::PolicyArtifact artifact = serve::make_artifact(trainer.export_policy(), env_cfg);
  serve::attach_baselines(artifact, bench::as_pointers(modules), corpus_eval);
  const auto published = node_a.publish("fleet", std::move(artifact));
  if (!published.is_ok() || published.value().peer_failures != 0) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }

  // Late joiner: time the catch-up pull.
  auto registry_c = std::make_shared<serve::ModelRegistry>();
  auto eval_c = std::make_shared<runtime::EvalService>();
  net::ServeNode node_c(registry_c, eval_c, node_cfg);
  if (!node_c.start().is_ok()) {
    std::fprintf(stderr, "late node failed to start\n");
    return 1;
  }
  const auto s0 = std::chrono::steady_clock::now();
  const auto sync = node_c.sync_from(node_a.endpoint());
  const double sync_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - s0).count();
  if (!sync.is_ok() || sync.value().fetched != 1) {
    std::fprintf(stderr, "catch-up failed: %s\n", sync.message().c_str());
    return 1;
  }

  // Route one request wave across the three-node ring.
  auto client = std::make_shared<serve::RemoteCompileClient>(
      std::vector<net::RemoteEndpoint>{node_a.endpoint(), node_b.endpoint(),
                                       node_c.endpoint()});
  std::vector<serve::CompileRequest> wave;
  for (std::size_t i = 0; i < requests; ++i) {
    serve::CompileRequest request;
    request.module = modules[i % modules.size()].get();
    request.model = "fleet";
    request.objective =
        i % 3 == 0 ? serve::Objective::kCyclesTimesArea : serve::Objective::kCycles;
    wave.push_back(request);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = client->compile_batch(wave);
  const double wave_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].is_ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", i, results[i].message().c_str());
      return 1;
    }
  }

  // Merged fleet snapshot: the control-plane measurement itself.
  serve::FleetMonitor monitor(client);
  const auto m0 = std::chrono::steady_clock::now();
  const serve::FleetStats fleet = monitor.poll();
  const double poll_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - m0).count();

  std::uint64_t per_node_sum = 0;
  bench::JsonArray per_node;
  for (const auto& report : fleet.per_node) {
    if (!report.reachable) {
      std::fprintf(stderr, "node unreachable during poll: %s\n", report.error.c_str());
      return 1;
    }
    per_node_sum += report.stats.completed;
    per_node.add_raw(strf("%llu", static_cast<unsigned long long>(report.stats.completed)));
  }
  const bool counts_consistent =
      per_node_sum == requests && fleet.completed == requests &&
      fleet.latency_samples == requests && fleet.models_min == fleet.models_max;

  bench::JsonObject out;
  out.field("bench", "fleet_stats");
  out.field("nodes", static_cast<std::uint64_t>(fleet.nodes));
  out.field("requests", static_cast<std::uint64_t>(requests));
  out.field("workers", static_cast<std::uint64_t>(workers));
  out.field("fleet_rps",
            wave_seconds > 0 ? static_cast<double>(requests) / wave_seconds : 0.0);
  out.field("merged_p50_ms", fleet.latency.p50_ms);
  out.field("merged_p95_ms", fleet.latency.p95_ms);
  out.field("monitor_poll_ms", poll_ms);
  out.field("sync_fetched", static_cast<std::uint64_t>(sync.value().fetched));
  out.field("sync_bytes", sync.value().fetched_bytes);
  out.field("sync_ms", sync_ms);
  out.field("warm_primed", static_cast<std::uint64_t>(eval_c->stats().primed));
  out.raw("per_node_completed", per_node.str());
  out.field("eval_misses", fleet.eval_misses);
  out.field("eval_hits", fleet.eval_hits);
  out.field("counts_consistent", counts_consistent ? "true" : "false");
  std::printf("%s\n", out.str().c_str());
  std::fprintf(stderr, "%s\n", serve::fleet_summary(fleet).c_str());
  return counts_consistent ? 0 : 1;
}

}  // namespace
}  // namespace autophase

int main(int argc, char** argv) { return autophase::run(argc, argv); }
