// Reproduces Fig. 9: one-shot generalisation to the nine benchmarks after
// training on random programs. Black-box algorithms (Genetic, OpenTuner,
// Greedy) pre-compute ONE pass sequence minimising aggregate cycles on the
// random corpus and apply it blindly (1 sample per new program); the RL
// agents run greedy inference with their trained policies (also 1 sample).
// Expected shape: predetermined sequences overfit the corpus (Genetic worst),
// RL inference is modestly positive; every algorithm uses 1 sample/program.
#include <functional>

#include <algorithm>

#include "bench/bench_util.hpp"
#include "core/autophase.hpp"
#include "core/importance.hpp"
#include "rl/ppo.hpp"
#include "search/search.hpp"

namespace {

using namespace autophase;

/// Mean cycles of one candidate sequence across the training corpus.
class AggregateEvaluator {
 public:
  AggregateEvaluator(const std::vector<const ir::Module*>& corpus)
      : corpus_(corpus), cache_(hls::ResourceConstraints{}, interp::InterpreterOptions{}) {}

  double evaluate(const std::vector<int>& seq) {
    double total = 0;
    for (const ir::Module* p : corpus_) {
      total += static_cast<double>(rl::evaluate_sequence_on(*p, seq, cache_));
    }
    if (total < best_total_) {
      best_total_ = total;
      best_ = seq;
    }
    return total;
  }
  [[nodiscard]] const std::vector<int>& best() const noexcept { return best_; }

 private:
  const std::vector<const ir::Module*>& corpus_;
  rl::EvaluationCache cache_;
  double best_total_ = 1e300;
  std::vector<int> best_;
};

std::vector<int> corpus_genetic(AggregateEvaluator& eval, int generations, Rng rng) {
  constexpr int kPop = 12;
  constexpr int kLen = 45;
  std::vector<std::vector<int>> pop;
  std::vector<double> fit;
  for (int i = 0; i < kPop; ++i) {
    pop.push_back(search::random_sequence(rng, kLen));
    fit.push_back(eval.evaluate(pop.back()));
  }
  for (int g = 0; g < generations; ++g) {
    auto select = [&]() -> const std::vector<int>& {
      std::size_t a = static_cast<std::size_t>(rng.uniform_int(0, kPop - 1));
      std::size_t b = static_cast<std::size_t>(rng.uniform_int(0, kPop - 1));
      return fit[a] < fit[b] ? pop[a] : pop[b];
    };
    std::vector<std::vector<int>> next;
    std::vector<double> next_fit;
    const std::size_t elite = static_cast<std::size_t>(
        std::min_element(fit.begin(), fit.end()) - fit.begin());
    next.push_back(pop[elite]);
    next_fit.push_back(fit[elite]);
    while (static_cast<int>(next.size()) < kPop) {
      std::vector<int> child = select();
      const auto& other = select();
      const auto cut = static_cast<std::size_t>(rng.uniform_int(0, kLen - 1));
      for (std::size_t i = cut; i < child.size(); ++i) child[i] = other[i];
      for (int& gene : child) {
        if (rng.chance(0.05)) gene = static_cast<int>(rng.uniform_int(0, passes::kNumPasses - 1));
      }
      next_fit.push_back(eval.evaluate(child));
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    fit = std::move(next_fit);
  }
  return eval.best();
}

std::vector<int> corpus_greedy(AggregateEvaluator& eval, int max_rounds) {
  std::vector<int> current;
  double current_fit = eval.evaluate(current);
  for (int round = 0; round < max_rounds; ++round) {
    double best_fit = current_fit;
    std::vector<int> best_candidate;
    for (int pass = 0; pass < passes::kNumPasses; ++pass) {
      for (std::size_t pos = 0; pos <= current.size(); pos += (current.size() / 4 + 1)) {
        std::vector<int> cand = current;
        cand.insert(cand.begin() + static_cast<std::ptrdiff_t>(pos), pass);
        const double f = eval.evaluate(cand);
        if (f < best_fit) {
          best_fit = f;
          best_candidate = cand;
        }
      }
    }
    if (best_candidate.empty()) break;
    current = std::move(best_candidate);
    current_fit = best_fit;
  }
  return eval.best();
}

std::vector<int> corpus_random_ensemble(AggregateEvaluator& eval, int rounds, Rng rng) {
  // OpenTuner stand-in at corpus scale: bandit over random restarts and
  // mutations of the incumbent.
  std::vector<int> incumbent = search::random_sequence(rng, 45);
  eval.evaluate(incumbent);
  for (int i = 0; i < rounds; ++i) {
    std::vector<int> cand = rng.chance(0.4) ? search::random_sequence(rng, 45) : eval.best();
    for (int& gene : cand) {
      if (rng.chance(0.1)) gene = static_cast<int>(rng.uniform_int(0, passes::kNumPasses - 1));
    }
    eval.evaluate(cand);
  }
  return eval.best();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t corpus_size =
      args.programs > 0 ? static_cast<std::size_t>(args.programs) : (args.full ? 100 : 10);
  const auto corpus = bench::random_corpus(corpus_size, args.seed);
  const auto programs = bench::as_pointers(corpus);
  std::fprintf(stderr, "[fig9] corpus of %zu random programs ready\n", corpus_size);

  // --- Black-box predetermined sequences (trained on the corpus) ---
  const int search_scale = args.full ? 5 : 1;
  std::vector<std::pair<std::string, std::vector<int>>> predetermined;
  {
    AggregateEvaluator eval(programs);
    predetermined.emplace_back("Genetic-DEAP",
                               corpus_genetic(eval, 6 * search_scale, Rng(args.seed)));
  }
  std::fprintf(stderr, "[fig9] genetic predetermined sequence ready\n");
  {
    AggregateEvaluator eval(programs);
    predetermined.emplace_back("OpenTuner",
                               corpus_random_ensemble(eval, 60 * search_scale, Rng(args.seed + 1)));
  }
  {
    AggregateEvaluator eval(programs);
    predetermined.emplace_back("Greedy", corpus_greedy(eval, 4 * search_scale));
  }
  std::fprintf(stderr, "[fig9] predetermined sequences ready\n");

  // --- RL agents trained on the corpus (filtered spaces, both norms) ---
  core::ImportanceConfig imp;
  imp.seed = args.seed;
  imp.num_programs = args.full ? 50 : 8;
  imp.target_samples = args.full ? 60000 : 5000;
  const auto spaces = core::filter_spaces(core::run_importance_analysis(imp));

  auto make_env_config = [&](rl::NormalizationMode norm) {
    rl::EnvConfig cfg;
    cfg.observation = rl::ObservationMode::kBoth;
    cfg.normalization = norm;
    cfg.log_reward = true;
    cfg.feature_subset = spaces.features;
    cfg.action_subset = spaces.actions;
    return cfg;
  };
  rl::PpoConfig ppo;
  ppo.iterations = args.full ? 60 : 10;
  ppo.steps_per_iteration = args.full ? 1000 : 270;
  ppo.seed = args.seed;

  std::vector<std::pair<std::string, std::unique_ptr<rl::PpoTrainer>>> agents;
  std::vector<std::unique_ptr<rl::PhaseOrderEnv>> train_envs;
  for (const auto& [name, norm] :
       std::vector<std::pair<std::string, rl::NormalizationMode>>{
           {"RL-filtered-norm1", rl::NormalizationMode::kLog},
           {"RL-filtered-norm2", rl::NormalizationMode::kInstCountRatio}}) {
    train_envs.push_back(std::make_unique<rl::PhaseOrderEnv>(programs, make_env_config(norm)));
    agents.emplace_back(name, std::make_unique<rl::PpoTrainer>(*train_envs.back(), ppo));
    agents.back().second->train();
    std::fprintf(stderr, "[fig9] trained %s\n", name.c_str());
  }

  // --- One-shot evaluation on the nine unseen benchmarks ---
  const auto& names = progen::chstone_benchmark_names();
  TextTable table({"algorithm", "improvement over -O3 (mean)", "samples/program"});
  std::printf("Fig. 9: deep-RL generalisation, 1 sample per new program (%s mode)\n",
              args.full ? "full" : "fast");

  std::vector<std::pair<std::string, std::function<std::vector<int>(const ir::Module&)>>> rows;
  for (auto& [name, seq] : predetermined) {
    std::vector<int> fixed = seq;
    rows.emplace_back(name, [fixed](const ir::Module&) { return fixed; });
  }
  for (std::size_t a = 0; a < agents.size(); ++a) {
    rl::PpoTrainer* trainer = agents[a].second.get();
    const auto cfg = make_env_config(a == 0 ? rl::NormalizationMode::kLog
                                            : rl::NormalizationMode::kInstCountRatio);
    rows.emplace_back(agents[a].first, [trainer, cfg](const ir::Module& program) {
      // Inference: no simulator calls; the applied sequence is measured once
      // by the caller (that single call is the "1 sample" of Fig. 9).
      rl::PhaseOrderEnv env({&program}, cfg);
      env.set_inference_mode(true);
      std::vector<double> obs = env.reset();
      std::vector<int> applied;
      for (int step = 0; step < 45; ++step) {
        const auto action = trainer->act_greedy(obs);
        applied.push_back(cfg.action_subset.empty()
                              ? static_cast<int>(action[0])
                              : cfg.action_subset[action[0]]);
        const rl::StepResult sr = env.step(action);
        obs = sr.observation;
        if (sr.done) break;
      }
      return applied;
    });
  }

  for (auto& [name, sequence_for] : rows) {
    double sum = 0;
    for (const auto& bench_name : names) {
      auto program = progen::build_chstone_like(bench_name);
      const std::uint64_t o3 = core::o3_cycles(*program);
      const std::uint64_t cycles =
          core::cycles_with_sequence(*program, sequence_for(*program));
      sum += bench::improvement(o3, cycles);
    }
    table.add_row({name, bench::pct(sum / static_cast<double>(names.size())), "1"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper values: Genetic -24%%, OpenTuner -2%%, Greedy +2%%, RL-filtered-norm1 +3%%,\n"
              "RL-filtered-norm2 +4%% — predetermined sequences overfit; RL generalises.\n");
  return 0;
}
