// Reproduces §6.2's closing experiment: after training filtered-norm2 on a
// corpus of random programs, evaluate one-shot inference on a large set of
// UNSEEN random programs (the paper uses 12,874 and reports +6% vs -O3).
// Fast mode tests 60 programs; use --programs N (and --full for paper-scale
// training budgets) to scale.
#include "bench/bench_util.hpp"
#include "core/autophase.hpp"
#include "core/importance.hpp"
#include "rl/ppo.hpp"

int main(int argc, char** argv) {
  using namespace autophase;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const std::size_t train_size = args.full ? 100 : 12;
  const auto corpus = bench::random_corpus(train_size, args.seed);
  const auto programs = bench::as_pointers(corpus);

  core::ImportanceConfig imp;
  imp.seed = args.seed;
  imp.num_programs = args.full ? 50 : 8;
  imp.target_samples = args.full ? 60000 : 5000;
  const auto spaces = core::filter_spaces(core::run_importance_analysis(imp));

  rl::EnvConfig cfg;
  cfg.observation = rl::ObservationMode::kBoth;
  cfg.normalization = rl::NormalizationMode::kInstCountRatio;  // technique 2
  cfg.log_reward = true;
  cfg.feature_subset = spaces.features;
  cfg.action_subset = spaces.actions;

  rl::PhaseOrderEnv env(programs, cfg);
  rl::PpoConfig ppo;
  ppo.iterations = args.full ? 60 : 10;
  ppo.steps_per_iteration = args.full ? 1000 : 270;
  ppo.seed = args.seed;
  rl::PpoTrainer trainer(env, ppo);
  trainer.train();
  std::fprintf(stderr, "[sec62] trained filtered-norm2 on %zu programs (%zu samples)\n",
               train_size, env.samples());

  const std::size_t test_count =
      args.programs > 0 ? static_cast<std::size_t>(args.programs) : (args.full ? 12874 : 40);
  double improvement_sum = 0;
  std::size_t better = 0;
  for (std::size_t i = 0; i < test_count; ++i) {
    auto program = progen::generate_filtered_program(args.seed * 104729 + 500000 + i);
    rl::PhaseOrderEnv inference_env({program.get()}, cfg);
    inference_env.set_inference_mode(true);
    std::vector<double> obs = inference_env.reset();
    std::vector<int> applied;
    for (int step = 0; step < 45; ++step) {
      const auto action = trainer.act_greedy(obs);
      applied.push_back(cfg.action_subset.empty() ? static_cast<int>(action[0])
                                                  : cfg.action_subset[action[0]]);
      const rl::StepResult sr = inference_env.step(action);
      obs = sr.observation;
      if (sr.done) break;
    }
    const std::uint64_t o3 = core::o3_cycles(*program);
    const std::uint64_t cycles = core::cycles_with_sequence(*program, applied);
    const double impr = bench::improvement(o3, cycles);
    improvement_sum += impr;
    if (impr > 0) ++better;
  }

  std::printf("Section 6.2: filtered-norm2 one-shot inference on %zu unseen random programs\n",
              test_count);
  std::printf("  mean improvement over -O3: %s   (paper: +6%% on 12,874 programs)\n",
              bench::pct(improvement_sum / static_cast<double>(test_count)).c_str());
  std::printf("  programs strictly better than -O3: %zu / %zu\n", better, test_count);
  std::printf("  samples per test program: 1\n");
  return 0;
}
