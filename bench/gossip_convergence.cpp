// Gossip convergence cost vs fleet size, measured on the deterministic
// network simulator: 3 / 9 / 27 virtual nodes under 10% message loss, three
// models published on three different nodes, pure pull gossip until every
// registry is bit-identical (checksum-verified). Reports rounds (full
// sweeps: every node runs one anti-entropy pull per sweep), exchanges, and
// bytes on the wire — the epidemic-replication scaling story in numbers.
// The fleet harness is net/sim_fleet.hpp, shared with tests/test_sim.cpp,
// so this measures exactly the protocol the chaos suite pins down.
//
// Virtual time makes the run exactly reproducible per seed, so the JSON is
// stable enough to gate: `identical` asserts final bit-identity and the
// process exits 1 if any fleet fails to converge.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/sim_fleet.hpp"
#include "support/table.hpp"

namespace {

using namespace autophase;

struct FleetRun {
  std::size_t nodes = 0;
  std::size_t rounds = 0;  // sweeps until bit-identical
  bool converged = false;
  std::uint64_t exchanges = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t dropped = 0;
  std::uint64_t virtual_ms = 0;
};

FleetRun run_fleet(std::size_t count, std::uint64_t seed, double loss, std::size_t max_sweeps) {
  net::SimFaultConfig faults;
  faults.drop = loss;
  net::SimFleet fleet(count, seed, faults);

  // Three publishers spread across the fleet — worst case for owner-push,
  // routine for gossip.
  fleet.nodes[0]->registry->publish("alpha", net::tiny_sim_artifact(1));
  fleet.nodes[count / 2]->registry->publish("beta", net::tiny_sim_artifact(2));
  fleet.nodes[count - 1]->registry->publish("gamma", net::tiny_sim_artifact(3));

  FleetRun run;
  run.nodes = count;
  const std::size_t sweeps = fleet.sweeps_until_converged(max_sweeps);
  run.converged = sweeps <= max_sweeps;
  run.rounds = run.converged ? sweeps : 0;
  run.exchanges = fleet.world.counters().exchanges;
  run.wire_bytes = fleet.world.counters().wire_bytes;
  run.dropped = fleet.world.counters().dropped;
  run.virtual_ms = fleet.world.now_us() / 1000;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = autophase::bench::BenchArgs::parse(argc, argv);
  const double loss = 0.10;
  const std::size_t max_sweeps = 64;

  autophase::TextTable table({"nodes", "rounds", "exchanges", "wire KiB", "dropped", "virt ms"});
  std::vector<FleetRun> runs;
  bool all_converged = true;
  for (const std::size_t count : {std::size_t{3}, std::size_t{9}, std::size_t{27}}) {
    const FleetRun run = run_fleet(count, args.seed, loss, max_sweeps);
    all_converged = all_converged && run.converged;
    table.add_row({std::to_string(run.nodes),
                   run.converged ? std::to_string(run.rounds) : "DNF",
                   std::to_string(run.exchanges),
                   autophase::strf("%.1f", static_cast<double>(run.wire_bytes) / 1024.0),
                   std::to_string(run.dropped), std::to_string(run.virtual_ms)});
    runs.push_back(run);
  }
  std::printf("%s\n", table.render().c_str());

  autophase::bench::JsonArray fleets;
  for (const FleetRun& run : runs) {
    fleets.add_raw(autophase::bench::JsonObject()
                       .field("nodes", static_cast<std::uint64_t>(run.nodes))
                       .field("rounds", static_cast<std::uint64_t>(run.rounds))
                       .field("exchanges", run.exchanges)
                       .field("wire_bytes", run.wire_bytes)
                       .field("dropped", run.dropped)
                       .field("virtual_ms", run.virtual_ms)
                       .str());
  }
  autophase::bench::JsonObject out;
  out.field("bench", "gossip_convergence")
      .field("seed", args.seed)
      .field("loss", loss)
      .raw("fleets", fleets.str())
      .field("identical", all_converged ? "true" : "false");
  std::printf("%s\n", out.str().c_str());
  return all_converged ? 0 : 1;
}
