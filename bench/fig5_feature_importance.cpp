// Reproduces Fig. 5: heat map of program-feature importance per pass, from
// random forests trained on exploration tuples over random programs (§4.1).
// Fast mode gathers ~8k tuples over 12 programs; --full matches the paper's
// 150k tuples over 100 programs.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "core/importance.hpp"
#include "features/features.hpp"
#include "passes/pass.hpp"

int main(int argc, char** argv) {
  using namespace autophase;
  const auto args = bench::BenchArgs::parse(argc, argv);

  core::ImportanceConfig config;
  config.seed = args.seed;
  config.num_programs = args.full ? 100 : 12;
  config.target_samples = args.full ? 150000 : 8000;
  const auto result = core::run_importance_analysis(config);

  std::printf("Fig. 5: feature-importance heat map (%zu exploration tuples)\n",
              result.total_samples);
  std::printf("%s\n",
              render_heatmap(result.feature_importance, "pass index (Table 1)",
                             "feature index (Table 2)")
                  .c_str());

  // Top correlations, mirroring the paper's §4.1 examples.
  std::printf("strongest (pass, feature) correlations:\n");
  struct Hot {
    double v;
    int pass;
    int feature;
  };
  std::vector<Hot> hots;
  for (int p = 0; p < passes::kNumPasses; ++p) {
    for (int f = 0; f < features::kNumFeatures; ++f) {
      hots.push_back({result.feature_importance[static_cast<std::size_t>(p)]
                                                [static_cast<std::size_t>(f)],
                      p, f});
    }
  }
  std::sort(hots.begin(), hots.end(), [](const Hot& a, const Hot& b) { return a.v > b.v; });
  TextTable table({"importance", "pass", "feature"});
  for (int i = 0; i < 12 && hots[static_cast<std::size_t>(i)].v > 0; ++i) {
    const Hot& h = hots[static_cast<std::size_t>(i)];
    table.add_row({fmt_double(h.v, 3),
                   strf("%d %s", h.pass,
                        std::string(passes::PassRegistry::instance().name(h.pass)).c_str()),
                   strf("%d %s", h.feature,
                        std::string(features::feature_name(h.feature)).c_str())});
  }
  std::printf("%s\n", table.render().c_str());

  double acc = 0;
  int counted = 0;
  for (const double a : result.forest_accuracy) {
    if (a > 0) {
      acc += a;
      ++counted;
    }
  }
  if (counted > 0) {
    std::printf("mean held-out forest accuracy over %d passes: %.2f\n", counted, acc / counted);
  }
  return 0;
}
