// Reproduces Fig. 6: heat map of the importance of previously applied
// passes on whether a new pass helps (§4.2), plus checks of the paper's two
// marquee observations: (23,23) -loop-rotate self-importance, and the
// rotate-before-unroll asymmetry.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "core/importance.hpp"
#include "passes/pass.hpp"

int main(int argc, char** argv) {
  using namespace autophase;
  const auto args = bench::BenchArgs::parse(argc, argv);

  core::ImportanceConfig config;
  config.seed = args.seed;
  config.num_programs = args.full ? 100 : 12;
  config.target_samples = args.full ? 150000 : 8000;
  const auto result = core::run_importance_analysis(config);

  std::printf("Fig. 6: previously-applied-pass importance heat map (%zu tuples)\n",
              result.total_samples);
  std::printf("%s\n",
              render_heatmap(result.pass_importance, "new pass (Table 1)",
                             "previously applied pass (Table 1)")
                  .c_str());

  const auto& reg = passes::PassRegistry::instance();
  const int rotate = reg.index_of("-loop-rotate");
  const int unroll = reg.index_of("-loop-unroll");
  const auto& m = result.pass_importance;
  const double rotate_self = m[static_cast<std::size_t>(rotate)][static_cast<std::size_t>(rotate)];
  const double unroll_after_rotate =
      m[static_cast<std::size_t>(unroll)][static_cast<std::size_t>(rotate)];
  const double rotate_after_unroll =
      m[static_cast<std::size_t>(rotate)][static_cast<std::size_t>(unroll)];

  std::printf("paper's marquee cells:\n");
  std::printf("  (%d,%d) -loop-rotate history for -loop-rotate decision: %.4f\n", rotate, rotate,
              rotate_self);
  std::printf("  unroll <- rotate-applied importance: %.4f\n", unroll_after_rotate);
  std::printf("  rotate <- unroll-applied importance: %.4f\n", rotate_after_unroll);
  std::printf("  rotate-before-unroll asymmetry (expect >1 as in the paper): %s\n",
              unroll_after_rotate > rotate_after_unroll ? "[OK]" : "[weaker than paper]");

  // Aggregate ranking: the paper lists 16 passes as "more impactful ...
  // regardless of their order".
  std::vector<std::pair<double, int>> mass;
  for (int j = 0; j < passes::kNumPasses; ++j) {
    double column = 0;
    for (int i = 0; i < passes::kNumPasses; ++i) {
      column += m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
    mass.emplace_back(column, j);
  }
  std::sort(mass.rbegin(), mass.rend());
  std::printf("most impactful previously-applied passes (top 16):\n ");
  for (int i = 0; i < 16; ++i) {
    std::printf(" %s", std::string(reg.name(mass[static_cast<std::size_t>(i)].second)).c_str());
  }
  std::printf("\n");
  return 0;
}
