// Pareto-serving harness: fires one scalar (greedy) request and one weighted
// multi-objective request per program at a CompileService and reports front
// size plus exact hypervolume as JSON (machine-readable, CI trend tracking).
// Identity gate: under the request's weights, the front's best scalarised
// score must never be worse than the scalar greedy answer's score — the
// Pareto decode can only add trade-off points, never lose the scalar one.
//
//   ./bench/pareto_front [--full] [--seed N] [--programs N] [--width N]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

#include "bench/bench_util.hpp"
#include "ir/printer.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "serve/compile_service.hpp"
#include "serve/model_registry.hpp"
#include "serve/pareto.hpp"

namespace autophase {
namespace {

using namespace serve;

int run(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  int front_width = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--width") == 0 && i + 1 < argc) {
      front_width = std::atoi(argv[++i]);
    }
  }

  // Workload: a rotation over CHStone-like kernels.
  const auto& names = progen::chstone_benchmark_names();
  const std::size_t num_programs =
      args.programs > 0 ? static_cast<std::size_t>(args.programs) : (args.full ? 6 : 3);
  std::vector<std::unique_ptr<ir::Module>> modules;
  for (std::size_t i = 0; i < num_programs; ++i) {
    modules.push_back(progen::build_chstone_like(names[i % names.size()]));
  }

  rl::EnvConfig env_cfg;
  env_cfg.observation = rl::ObservationMode::kActionHistogram;
  env_cfg.episode_length = args.full ? 12 : 6;
  rl::PhaseOrderEnv env({modules[0].get()}, env_cfg);
  rl::PpoConfig ppo;
  ppo.hidden = {64, 64};
  ppo.seed = args.seed;
  const rl::PpoTrainer trainer(env, ppo);

  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("bench", make_artifact(trainer.export_policy(), env_cfg));
  auto eval = std::make_shared<runtime::EvalService>();
  CompileService service(registry, eval, {});

  // Cycles + IR size: the pair the paper's phase ordering actually trades
  // off (area is near-flat under these kernels, which would make every
  // front width 1 and the bench vacuous).
  const ObjectiveWeights weights{1.0, 0.0, 1.0};

  std::uint64_t front_points = 0;
  std::size_t max_front = 0;
  double hv_sum = 0.0;
  bool dominates_scalar = true;
  bool fronts_nondominated = true;
  for (auto& module : modules) {
    CompileRequest scalar;
    scalar.module = module.get();
    scalar.model = "bench";
    auto scalar_response = service.compile_sync(scalar);
    if (!scalar_response.is_ok()) {
      std::fprintf(stderr, "scalar serve failed: %s\n", scalar_response.message().c_str());
      return 1;
    }
    ParetoPoint scalar_point;
    scalar_point.cycles = scalar_response.value().provenance.measured_cycles;
    scalar_point.area = scalar_response.value().provenance.measured_area;
    scalar_point.ir_size = ir::module_ir_size(*scalar_response.value().module);

    CompileRequest pareto = scalar;
    pareto.weights = weights;
    pareto.front_width = front_width;
    auto response = service.compile_sync(pareto);
    if (!response.is_ok()) {
      std::fprintf(stderr, "pareto serve failed: %s\n", response.message().c_str());
      return 1;
    }
    const auto& front = response.value().front;
    front_points += front.size();
    max_front = std::max(max_front, front.size());
    hv_sum += response.value().front_hypervolume;
    fronts_nondominated = fronts_nondominated && is_nondominated(front, weights);

    double best = std::numeric_limits<double>::infinity();
    for (const auto& point : front) best = std::min(best, scalar_score(point, weights));
    dominates_scalar = dominates_scalar && best <= scalar_score(scalar_point, weights);
  }

  const bool ok = dominates_scalar && fronts_nondominated;
  bench::JsonObject out;
  out.field("bench", "pareto_front");
  out.field("programs", static_cast<std::uint64_t>(modules.size()));
  out.field("front_width", front_width);
  out.field("mean_front_size",
            modules.empty() ? 0.0 : static_cast<double>(front_points) / modules.size());
  out.field("max_front_size", static_cast<std::uint64_t>(max_front));
  out.field("mean_hypervolume", modules.empty() ? 0.0 : hv_sum / modules.size());
  out.field("fronts_nondominated", fronts_nondominated ? "true" : "false");
  out.field("front_dominates_scalar", dominates_scalar ? "true" : "false");
  std::printf("%s\n", out.str().c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace autophase

int main(int argc, char** argv) { return autophase::run(argc, argv); }
