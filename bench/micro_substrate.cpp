// google-benchmark microbenchmarks of the substrate itself: the components
// on AutoPhase's critical path (Fig. 4 block diagram) — IR cloning, feature
// extraction, HLS scheduling, cycle profiling, pass application, module
// fingerprinting — and the end-to-end environment step.
#include <benchmark/benchmark.h>

#include "features/features.hpp"
#include "hls/cycle_estimator.hpp"
#include "ir/clone.hpp"
#include "ir/printer.hpp"
#include "passes/pass.hpp"
#include "passes/pipelines.hpp"
#include "progen/chstone_like.hpp"
#include "progen/random_program.hpp"
#include "rl/env.hpp"

namespace {

using namespace autophase;

void BM_CloneModule(benchmark::State& state) {
  auto m = progen::build_chstone_like("gsm");
  for (auto _ : state) {
    auto copy = ir::clone_module(*m);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_CloneModule);

void BM_ExtractFeatures(benchmark::State& state) {
  auto m = progen::build_chstone_like("gsm");
  for (auto _ : state) {
    auto fv = features::extract_features(*m);
    benchmark::DoNotOptimize(fv);
  }
}
BENCHMARK(BM_ExtractFeatures);

void BM_ScheduleModule(benchmark::State& state) {
  auto m = progen::build_chstone_like("matmul");
  for (auto _ : state) {
    auto sched = hls::schedule_module(*m);
    benchmark::DoNotOptimize(sched);
  }
}
BENCHMARK(BM_ScheduleModule);

void BM_InterpretAndProfile(benchmark::State& state) {
  auto m = progen::build_chstone_like("matmul");
  for (auto _ : state) {
    auto r = interp::run_module(*m);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_InterpretAndProfile);

void BM_CycleEstimateEndToEnd(benchmark::State& state) {
  auto m = progen::build_chstone_like("matmul");
  for (auto _ : state) {
    auto est = hls::profile_cycles(*m);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_CycleEstimateEndToEnd);

void BM_ModuleFingerprint(benchmark::State& state) {
  auto m = progen::build_chstone_like("gsm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::module_fingerprint(*m));
  }
}
BENCHMARK(BM_ModuleFingerprint);

void BM_PassMem2Reg(benchmark::State& state) {
  auto original = progen::build_chstone_like("gsm");
  for (auto _ : state) {
    state.PauseTiming();
    auto m = ir::clone_module(*original);
    state.ResumeTiming();
    passes::apply_pass(*m, passes::PassRegistry::instance().index_of("-mem2reg"));
  }
}
BENCHMARK(BM_PassMem2Reg);

void BM_O3Pipeline(benchmark::State& state) {
  auto original = progen::build_chstone_like("gsm");
  for (auto _ : state) {
    state.PauseTiming();
    auto m = ir::clone_module(*original);
    state.ResumeTiming();
    passes::run_o3(*m);
  }
}
BENCHMARK(BM_O3Pipeline);

void BM_RandomProgramGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto m = progen::generate_filtered_program(seed++);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_RandomProgramGeneration);

void BM_EnvStep(benchmark::State& state) {
  auto m = progen::build_chstone_like("sha");
  rl::EnvConfig cfg;
  cfg.observation = rl::ObservationMode::kBoth;
  rl::PhaseOrderEnv env({m.get()}, cfg);
  env.reset();
  std::size_t action = 0;
  int steps = 0;
  for (auto _ : state) {
    const auto r = env.step({action % env.action_arity()});
    ++action;
    if (r.done || ++steps >= 44) {
      steps = 0;
      state.PauseTiming();
      env.reset();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(r.reward);
  }
}
BENCHMARK(BM_EnvStep);

/// Ablation (DESIGN.md §5.2): evaluation caching. Steps replay the same
/// prefix constantly; the fingerprint cache turns most of them into hits.
void BM_EnvStepCacheCold(benchmark::State& state) {
  auto m = progen::build_chstone_like("sha");
  Rng rng(7);
  rl::EnvConfig cfg;
  for (auto _ : state) {
    state.PauseTiming();
    rl::PhaseOrderEnv env({m.get()}, cfg);  // fresh cache each episode
    env.reset();
    state.ResumeTiming();
    for (int i = 0; i < 8; ++i) {
      env.step({static_cast<std::size_t>(rng.uniform_int(0, 44))});
    }
  }
}
BENCHMARK(BM_EnvStepCacheCold);

}  // namespace

BENCHMARK_MAIN();
