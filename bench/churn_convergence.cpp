// Membership-churn convergence cost, measured on the deterministic network
// simulator: a fleet under 10% message loss loses one node mid-flight, and
// the bench counts the sweeps until every survivor holds the same membership
// digest with the corpse confirmed dead (SWIM suspicion -> confirmation via
// piggybacked rumors), then restarts the node and counts the sweeps until it
// refutes its own obituary and catches back up to bit-identical registries.
// Also reported: exchanges refused against the down node — the cost of not
// yet knowing — which must stop growing once the death is confirmed.
//
// The harness is net/sim_fleet.hpp, shared with tests/test_sim.cpp, so this
// measures exactly the protocol the churn suite pins down. Virtual time
// makes the run exactly reproducible per seed; `membership_converged` is the
// identity key the bench gate asserts, and the process exits 1 if any fleet
// fails to re-form.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/membership.hpp"
#include "net/sim_fleet.hpp"
#include "support/table.hpp"

namespace {

using namespace autophase;

struct ChurnRun {
  std::size_t nodes = 0;
  std::size_t confirm_sweeps = 0;  // kill -> survivors agree on the death
  std::size_t rejoin_sweeps = 0;   // restart -> all-alive + registries identical
  bool membership_converged = false;
  std::uint64_t exchanges = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t refused_down = 0;  // exchanges burned against the down node
  std::uint64_t virtual_ms = 0;
};

bool survivors_agree_dead(const net::SimFleet& fleet, const net::RemoteEndpoint& corpse) {
  for (std::size_t i = 0; i < fleet.nodes.size(); ++i) {
    if (fleet.down(i)) continue;
    if (fleet.nodes[i]->membership->state_of(corpse) != net::MemberState::kDead) return false;
  }
  return true;
}

bool survivors_agree_alive(const net::SimFleet& fleet, const net::RemoteEndpoint& target) {
  for (std::size_t i = 0; i < fleet.nodes.size(); ++i) {
    if (fleet.down(i)) continue;
    if (fleet.nodes[i]->membership->state_of(target) != net::MemberState::kAlive) return false;
  }
  return true;
}

ChurnRun run_churn(std::size_t count, std::uint64_t seed, double loss, std::size_t max_sweeps) {
  net::SimFaultConfig faults;
  faults.drop = loss;
  net::SimFleet fleet(count, seed, faults);
  // Production-default suspicion thresholds: the aggressive {1, 2} config the
  // chaos tests use on tiny fleets confirms spurious deaths under 10% loss
  // once the fleet is big enough — exactly the tolerance the defaults buy.
  fleet.enable_membership();
  fleet.nodes[0]->registry->publish("alpha", net::tiny_sim_artifact(1));
  fleet.nodes[count / 2]->registry->publish("beta", net::tiny_sim_artifact(2));

  ChurnRun run;
  run.nodes = count;
  if (fleet.sweeps_until_converged(max_sweeps) > max_sweeps) return run;

  // Kill the last node and keep publishing: the fleet must re-form around
  // the corpse while load still flows.
  const std::size_t victim = count - 1;
  const net::RemoteEndpoint corpse = fleet.nodes[victim]->endpoint;
  fleet.kill(victim);
  fleet.nodes[0]->registry->publish("gamma", net::tiny_sim_artifact(3));
  for (std::size_t sweep = 1; sweep <= max_sweeps; ++sweep) {
    fleet.gossip_sweep();
    if (survivors_agree_dead(fleet, corpse) && fleet.membership_converged() &&
        fleet.converged()) {
      run.confirm_sweeps = sweep;
      break;
    }
  }
  if (run.confirm_sweeps == 0) return run;

  // Restart with on-disk state: the node must refute its obituary (bumping
  // its incarnation past the dead record) and pull everything it missed.
  fleet.restart(victim);
  for (std::size_t sweep = 1; sweep <= max_sweeps; ++sweep) {
    fleet.gossip_sweep();
    if (survivors_agree_alive(fleet, corpse) && fleet.membership_converged() &&
        fleet.converged()) {
      run.rejoin_sweeps = sweep;
      break;
    }
  }
  run.membership_converged = run.rejoin_sweeps > 0;
  run.exchanges = fleet.world.counters().exchanges;
  run.wire_bytes = fleet.world.counters().wire_bytes;
  run.refused_down = fleet.world.counters().node_down;
  run.virtual_ms = fleet.world.now_us() / 1000;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = autophase::bench::BenchArgs::parse(argc, argv);
  const double loss = 0.10;
  const std::size_t max_sweeps = 96;

  autophase::TextTable table(
      {"nodes", "confirm", "rejoin", "exchanges", "wire KiB", "refused", "virt ms"});
  std::vector<ChurnRun> runs;
  bool all_converged = true;
  for (const std::size_t count : {std::size_t{5}, std::size_t{9}, std::size_t{17}}) {
    const ChurnRun run = run_churn(count, args.seed, loss, max_sweeps);
    all_converged = all_converged && run.membership_converged;
    table.add_row({std::to_string(run.nodes),
                   run.confirm_sweeps > 0 ? std::to_string(run.confirm_sweeps) : "DNF",
                   run.rejoin_sweeps > 0 ? std::to_string(run.rejoin_sweeps) : "DNF",
                   std::to_string(run.exchanges),
                   autophase::strf("%.1f", static_cast<double>(run.wire_bytes) / 1024.0),
                   std::to_string(run.refused_down), std::to_string(run.virtual_ms)});
    runs.push_back(run);
  }
  std::printf("%s\n", table.render().c_str());

  autophase::bench::JsonArray fleets;
  for (const ChurnRun& run : runs) {
    fleets.add_raw(autophase::bench::JsonObject()
                       .field("nodes", static_cast<std::uint64_t>(run.nodes))
                       .field("confirm_sweeps", static_cast<std::uint64_t>(run.confirm_sweeps))
                       .field("rejoin_sweeps", static_cast<std::uint64_t>(run.rejoin_sweeps))
                       .field("exchanges", run.exchanges)
                       .field("wire_bytes", run.wire_bytes)
                       .field("refused_down", run.refused_down)
                       .field("virtual_ms", run.virtual_ms)
                       .str());
  }
  autophase::bench::JsonObject out;
  out.field("bench", "churn_convergence")
      .field("seed", args.seed)
      .field("loss", loss)
      .raw("fleets", fleets.str())
      .field("membership_converged", all_converged ? "true" : "false");
  std::printf("%s\n", out.str().c_str());
  return all_converged ? 0 : 1;
}
