// Reproduces Fig. 7: circuit speedup over -O3 and samples/program for every
// algorithm in the paper's per-program evaluation — -O0, -O3, RL-PPO1 (zeroed
// rewards), RL-PPO2 (action histogram), RL-A3C, Greedy, RL-PPO3
// (multi-action), OpenTuner-style ensemble, RL-ES, Genetic-DEAP, Random —
// across the nine CHStone-like benchmarks.
//
// Expected shape (paper): -O0 strongly negative; Greedy and Random small;
// the RL agents competitive with the big black-box searches at one to two
// orders of magnitude fewer samples.
#include <memory>
#include <mutex>

#include "bench/bench_util.hpp"
#include "core/autophase.hpp"
#include "rl/a3c.hpp"
#include "rl/es.hpp"
#include "rl/ppo.hpp"
#include "search/search.hpp"

namespace {

using namespace autophase;

struct Outcome {
  std::uint64_t cycles = 0;
  std::size_t samples = 0;
};

struct Budgets {
  int ppo_iterations;
  int ppo_steps;
  int ppo3_iterations;
  int ppo3_steps;
  int a3c_total_steps;
  int es_iterations;
  int es_pairs;
  std::size_t greedy_samples;
  std::size_t opentuner_samples;
  std::size_t genetic_samples;
  std::size_t random_samples;
};

Budgets budgets(bool full) {
  if (full) {
    return {80, 180, 24, 60, 10800, 48, 8, 3510, 4384, 6789, 8400};
  }
  return {36, 150, 12, 45, 3600, 20, 4, 450, 2000, 2000, 2000};
}

Outcome run_ppo(const ir::Module& program, rl::ObservationMode obs, bool zero_rewards,
                const Budgets& b, std::uint64_t seed) {
  rl::EnvConfig cfg;
  cfg.observation = obs;
  cfg.zero_rewards = zero_rewards;
  rl::PhaseOrderEnv env({&program}, cfg);
  rl::PpoConfig ppo;
  ppo.iterations = b.ppo_iterations;
  ppo.steps_per_iteration = b.ppo_steps;
  ppo.entropy_coef = 0.03;
  ppo.seed = seed;
  rl::PpoTrainer trainer(env, ppo);
  trainer.train();
  return {env.best_cycles(0), env.samples()};
}

Outcome run_ppo3(const ir::Module& program, const Budgets& b, std::uint64_t seed) {
  rl::EnvConfig cfg;
  cfg.observation = rl::ObservationMode::kBoth;
  rl::MultiActionEnv env({&program}, cfg);
  rl::PpoConfig ppo;
  ppo.iterations = b.ppo3_iterations;
  ppo.steps_per_iteration = b.ppo3_steps;
  ppo.minibatch_size = 32;
  ppo.entropy_coef = 0.03;
  ppo.seed = seed;
  rl::PpoTrainer trainer(env, ppo);
  trainer.train();
  return {env.best_cycles(0), env.samples()};
}

Outcome run_a3c(const ir::Module& program, const Budgets& b, std::uint64_t seed) {
  std::vector<std::unique_ptr<rl::PhaseOrderEnv>> envs;  // outlives the trainer
  std::mutex envs_mutex;
  rl::A3cConfig cfg;
  cfg.total_steps = b.a3c_total_steps;
  cfg.workers = 4;
  cfg.seed = seed;
  rl::A3cTrainer trainer(
      [&]() {
        rl::EnvConfig env_cfg;
        env_cfg.observation = rl::ObservationMode::kProgramFeatures;
        const std::lock_guard<std::mutex> lock(envs_mutex);
        envs.push_back(std::make_unique<rl::PhaseOrderEnv>(
            std::vector<const ir::Module*>{&program}, env_cfg));
        return envs.back().get();
      },
      cfg);
  trainer.train();
  Outcome out{~0ull, 0};
  for (const auto& env : envs) {
    out.cycles = std::min(out.cycles, env->best_cycles(0));
    out.samples += env->samples();
  }
  return out;
}

Outcome run_es(const ir::Module& program, const Budgets& b, std::uint64_t seed) {
  rl::EnvConfig cfg;
  cfg.observation = rl::ObservationMode::kProgramFeatures;
  rl::PhaseOrderEnv env({&program}, cfg);
  rl::EsConfig es;
  es.iterations = b.es_iterations;
  es.population_pairs = b.es_pairs;
  es.seed = seed;
  rl::EsTrainer trainer(env, es);
  trainer.train();
  return {env.best_cycles(0), env.samples()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const Budgets b = budgets(args.full);
  const auto& names = progen::chstone_benchmark_names();

  struct Algo {
    std::string name;
    double improvement_sum = 0;
    double samples_sum = 0;
  };
  std::vector<Algo> algos = {{"-O0"},       {"-O3"},       {"RL-PPO1"}, {"RL-PPO2"},
                             {"RL-A3C"},    {"Greedy"},    {"RL-PPO3"}, {"OpenTuner"},
                             {"RL-ES"},     {"Genetic-DEAP"}, {"Random"}};
  TextTable per_bench({"benchmark", "O0", "O3", "PPO1", "PPO2", "A3C", "Greedy", "PPO3",
                       "OpenTuner", "ES", "Genetic", "Random"});

  for (const auto& bench_name : names) {
    auto program = progen::build_chstone_like(bench_name);
    const std::uint64_t o0 = core::o0_cycles(*program);
    const std::uint64_t o3 = core::o3_cycles(*program);

    search::SearchBudget sb;
    sb.seed = args.seed;

    std::vector<Outcome> outcomes;
    outcomes.push_back({o0, 1});
    outcomes.push_back({o3, 1});
    outcomes.push_back(
        run_ppo(*program, rl::ObservationMode::kProgramFeatures, true, b, args.seed));
    outcomes.push_back(
        run_ppo(*program, rl::ObservationMode::kActionHistogram, false, b, args.seed));
    outcomes.push_back(run_a3c(*program, b, args.seed));
    sb.max_samples = b.greedy_samples;
    {
      const auto r = search::greedy_search(*program, sb);
      outcomes.push_back({r.best_cycles, r.samples});
    }
    outcomes.push_back(run_ppo3(*program, b, args.seed));
    sb.max_samples = b.opentuner_samples;
    {
      const auto r = search::opentuner_search(*program, sb);
      outcomes.push_back({r.best_cycles, r.samples});
    }
    outcomes.push_back(run_es(*program, b, args.seed));
    sb.max_samples = b.genetic_samples;
    {
      const auto r = search::genetic_search(*program, sb);
      outcomes.push_back({r.best_cycles, r.samples});
    }
    sb.max_samples = b.random_samples;
    {
      const auto r = search::random_search(*program, sb);
      outcomes.push_back({r.best_cycles, r.samples});
    }

    std::vector<std::string> row{bench_name};
    for (std::size_t a = 0; a < algos.size(); ++a) {
      const double impr = bench::improvement(o3, outcomes[a].cycles);
      algos[a].improvement_sum += impr;
      algos[a].samples_sum += static_cast<double>(outcomes[a].samples);
      row.push_back(bench::pct(impr));
    }
    per_bench.add_row(row);
    std::fprintf(stderr, "[fig7] %s done\n", bench_name.c_str());
  }

  std::printf("Fig. 7: circuit speedup over -O3 and samples/program (%s mode)\n",
              args.full ? "full" : "fast");
  TextTable summary({"algorithm", "improvement over -O3 (mean)", "samples/program (mean)"});
  for (const auto& a : algos) {
    summary.add_row({a.name, bench::pct(a.improvement_sum / static_cast<double>(names.size())),
                     strf("%.0f", a.samples_sum / static_cast<double>(names.size()))});
  }
  std::printf("%s\nper-benchmark improvement over -O3:\n%s\n", summary.render().c_str(),
              per_bench.render().c_str());
  std::printf(
      "paper values: -O0 -23%%, RL-PPO1 +9%%, RL-PPO2 +24%% @88, RL-A3C +25%%, Greedy +3%%,\n"
      "RL-PPO3 +28%%, OpenTuner +28%% @4384, RL-ES +26%%, Genetic +27%%, Random +7%%.\n"
      "Expect the same ordering shape; magnitudes differ on the simulated substrate.\n");
  return 0;
}
