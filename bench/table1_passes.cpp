// Reproduces Table 1: the 45 LLVM transform passes (+ -terminate) with the
// paper's exact indices, and the §1 search-space claim (45^45 > 2^247).
#include <cmath>

#include "bench/bench_util.hpp"
#include "passes/pass.hpp"

int main() {
  using namespace autophase;
  const auto& reg = passes::PassRegistry::instance();

  TextTable table({"index", "pass", "index", "pass", "index", "pass"});
  for (int i = 0; i < 16; ++i) {
    std::vector<std::string> row;
    for (int col = 0; col < 3; ++col) {
      const int idx = i + 16 * col;
      if (idx <= passes::kTerminateAction) {
        row.push_back(std::to_string(idx));
        row.emplace_back(reg.name(idx));
      } else {
        row.emplace_back("");
        row.emplace_back("");
      }
    }
    table.add_row(row);
  }
  std::printf("Table 1: LLVM Transform Passes (AutoPhase action space)\n%s\n",
              table.render().c_str());

  const double log2_space =
      static_cast<double>(passes::kNumPasses) * std::log2(passes::kNumPasses);
  std::printf("search space: %d^%d orderings = 2^%.0f  (paper: > 2^247)  %s\n",
              passes::kNumPasses, passes::kNumPasses, log2_space,
              log2_space > 247.0 ? "[OK]" : "[MISMATCH]");
  std::printf("actions: %d passes + 1 terminate = %d\n", passes::kNumPasses,
              passes::kNumActions);
  return 0;
}
