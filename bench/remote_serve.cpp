// Remote-serving harness: starts a ServeNode on a loopback ephemeral port,
// publishes a policy over the wire, then measures the protocol two ways —
// sequential request/response round trips (client-observed latency
// quantiles) and one pipelined batch over a single connection (throughput).
// Every remote answer is checked byte-identical to compile_sync against the
// owning node's registry; any mismatch or failed request exits non-zero.
// Output is JSON for CI trend tracking.
//
//   ./bench/remote_serve [--full] [--seed N] [--programs N]
//                        [--workers N] [--requests N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "serve/remote_client.hpp"

namespace autophase {
namespace {

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int run(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  std::size_t workers = 4;
  std::size_t requests = args.full ? 128 : 24;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }

  const auto& names = progen::chstone_benchmark_names();
  const std::size_t num_programs =
      args.programs > 0 ? static_cast<std::size_t>(args.programs) : 3;
  std::vector<std::unique_ptr<ir::Module>> modules;
  for (std::size_t i = 0; i < num_programs; ++i) {
    modules.push_back(progen::build_chstone_like(names[i % names.size()]));
  }

  rl::EnvConfig env_cfg;
  env_cfg.observation = rl::ObservationMode::kActionHistogram;
  env_cfg.episode_length = args.full ? 12 : 5;
  rl::PhaseOrderEnv env({modules[0].get()}, env_cfg);
  rl::PpoConfig ppo;
  ppo.hidden = {64, 64};
  ppo.seed = args.seed;
  const rl::PpoTrainer trainer(env, ppo);

  net::ServeNodeConfig node_cfg;
  node_cfg.compile.workers = workers;
  node_cfg.compile.queue_capacity = std::max<std::size_t>(requests, 16);
  node_cfg.net_workers = std::max<std::size_t>(2, workers / 2);
  net::ServeNode node(nullptr, nullptr, node_cfg);
  if (const Status s = node.start(); !s.is_ok()) {
    std::fprintf(stderr, "serve node failed to start: %s\n", s.message().c_str());
    return 1;
  }

  serve::RemoteCompileClient client({node.endpoint()});
  const auto published =
      client.publish(0, "bench", serve::make_artifact(trainer.export_policy(), env_cfg));
  if (!published.is_ok()) {
    std::fprintf(stderr, "publish over the wire failed: %s\n", published.message().c_str());
    return 1;
  }

  const auto make_request = [&](std::size_t i) {
    serve::CompileRequest request;
    request.module = modules[i % modules.size()].get();
    request.model = "bench";
    request.objective =
        i % 3 == 0 ? serve::Objective::kCyclesTimesArea : serve::Objective::kCycles;
    request.beam_width = 1 + static_cast<int>(i % 2);
    return request;
  };

  // Reference pass: compile_sync on the owning node (also warms its
  // EvalService exactly as steady-state traffic would).
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < requests; ++i) {
    auto response = node.service().compile_sync(make_request(i));
    if (!response.is_ok()) {
      std::fprintf(stderr, "sync serve failed: %s\n", response.message().c_str());
      return 1;
    }
    expected.push_back(net::response_identity_bytes(response.value()));
  }

  // Phase 1: sequential round trips — client-observed latency.
  bool identical = true;
  std::vector<double> rt_ms;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const auto r0 = std::chrono::steady_clock::now();
    auto response = client.compile(make_request(i));
    if (!response.is_ok()) {
      std::fprintf(stderr, "remote request %zu failed: %s\n", i, response.message().c_str());
      return 1;
    }
    rt_ms.push_back(
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - r0)
            .count());
    identical = identical && net::response_identity_bytes(response.value()) == expected[i];
  }
  const double seq_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Phase 2: the same workload pipelined over one connection.
  std::vector<serve::CompileRequest> batch;
  for (std::size_t i = 0; i < requests; ++i) batch.push_back(make_request(i));
  const auto p0 = std::chrono::steady_clock::now();
  auto results = client.compile_batch(batch);
  const double pipe_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - p0).count();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].is_ok()) {
      std::fprintf(stderr, "pipelined request %zu failed: %s\n", i,
                   results[i].message().c_str());
      return 1;
    }
    identical = identical && net::response_identity_bytes(results[i].value()) == expected[i];
  }

  const net::NodeStats stats = node.stats();
  const serve::RemoteClientStats client_stats = client.stats();
  bench::JsonObject out;
  out.field("bench", "remote_serve");
  out.field("requests", static_cast<std::uint64_t>(requests));
  out.field("workers", static_cast<std::uint64_t>(workers));
  out.field("programs", static_cast<std::uint64_t>(modules.size()));
  out.field("roundtrip_rps",
            seq_seconds > 0 ? static_cast<double>(requests) / seq_seconds : 0.0);
  out.field("roundtrip_p50_ms", quantile(rt_ms, 0.5));
  out.field("roundtrip_p95_ms", quantile(rt_ms, 0.95));
  out.field("pipelined_rps",
            pipe_seconds > 0 ? static_cast<double>(requests) / pipe_seconds : 0.0);
  out.field("server_p50_ms", stats.p50_ms);
  out.field("server_p95_ms", stats.p95_ms);
  out.field("server_completed", stats.completed);
  out.field("server_failed", stats.failed);
  out.field("eval_cache_hits", stats.eval_hits);
  out.field("eval_cache_misses", stats.eval_misses);
  {
    runtime::EvalStats eval;
    eval.hits = stats.eval_hits;
    eval.sequence_hits = stats.eval_sequence_hits;
    eval.misses = stats.eval_misses;
    out.field("eval_cache_hit_rate", eval.hit_rate());
  }
  out.field("client_connects", client_stats.connects);
  out.field("client_timeouts", client_stats.timeouts);
  out.field("serial_identical", identical ? "true" : "false");
  std::printf("%s\n", out.str().c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace autophase

int main(int argc, char** argv) { return autophase::run(argc, argv); }
