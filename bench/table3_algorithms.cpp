// Reproduces Table 3: the observation and action spaces used by each deep
// RL algorithm, with the live environment dimensions of this implementation.
#include "bench/bench_util.hpp"
#include "rl/env.hpp"

int main() {
  using namespace autophase;
  auto program = progen::build_chstone_like("gsm");

  auto dims = [&](rl::ObservationMode obs) {
    rl::EnvConfig cfg;
    cfg.observation = obs;
    rl::PhaseOrderEnv env({program.get()}, cfg);
    return std::make_pair(env.observation_size(), env.action_arity());
  };
  const auto feat = dims(rl::ObservationMode::kProgramFeatures);
  const auto hist = dims(rl::ObservationMode::kActionHistogram);
  const auto both = dims(rl::ObservationMode::kBoth);
  rl::EnvConfig multi_cfg;
  multi_cfg.observation = rl::ObservationMode::kBoth;
  rl::MultiActionEnv multi({program.get()}, multi_cfg);

  TextTable table({"algorithm", "deep RL algo", "observation space", "obs dim",
                   "action space", "act dim"});
  table.add_row({"RL-PPO1", "PPO", "Program Features", std::to_string(feat.first),
                 "Single-Action", strf("1 x %zu", feat.second)});
  table.add_row({"RL-PPO2", "PPO", "Action History", std::to_string(hist.first),
                 "Single-Action", strf("1 x %zu", hist.second)});
  table.add_row({"RL-PPO3", "PPO", "Action History + Program Features",
                 std::to_string(multi.observation_size()), "Multiple-Action",
                 strf("%zu x %zu", multi.action_groups(), multi.action_arity())});
  table.add_row({"RL-A3C", "A3C", "Program Features", std::to_string(feat.first),
                 "Single-Action", strf("1 x %zu", feat.second)});
  table.add_row({"RL-ES", "ES", "Program Features", std::to_string(feat.first),
                 "Single-Action", strf("1 x %zu", feat.second)});
  (void)both;
  std::printf(
      "Table 3: observation and action spaces of the deep RL algorithms\n%s\n"
      "policy network: 256x256 fully connected (paper section 6.2)\n",
      table.render().c_str());
  return 0;
}
