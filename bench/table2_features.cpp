// Reproduces Table 2: the 56 program features, shown with live values
// extracted from two of the nine evaluation benchmarks at -O0 and -O3.
#include "bench/bench_util.hpp"
#include "features/features.hpp"
#include "ir/clone.hpp"
#include "passes/pipelines.hpp"

int main() {
  using namespace autophase;
  auto matmul = progen::build_chstone_like("matmul");
  auto aes = progen::build_chstone_like("aes");
  auto matmul_o3 = ir::clone_module(*matmul);
  passes::run_o3(*matmul_o3);

  const auto fv_matmul = features::extract_features(*matmul);
  const auto fv_matmul_o3 = features::extract_features(*matmul_o3);
  const auto fv_aes = features::extract_features(*aes);

  TextTable table({"#", "feature", "matmul -O0", "matmul -O3", "aes -O0"});
  for (int i = 0; i < features::kNumFeatures; ++i) {
    table.add_row({std::to_string(i), std::string(features::feature_name(i)),
                   std::to_string(fv_matmul[static_cast<std::size_t>(i)]),
                   std::to_string(fv_matmul_o3[static_cast<std::size_t>(i)]),
                   std::to_string(fv_aes[static_cast<std::size_t>(i)])});
  }
  std::printf("Table 2: Program Features (observation space)\n%s\n", table.render().c_str());
  return 0;
}
