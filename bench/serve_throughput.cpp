// Serving throughput/latency harness: publishes a policy into a
// ModelRegistry, fires a stream of concurrent compile requests at a
// CompileService, and reports requests/sec plus p50/p95 latency as JSON
// (machine-readable, CI trend tracking). Also cross-checks that every served
// sequence is bit-identical to the single-threaded compile_sync path — the
// batching/queueing layers must never change an answer.
//
//   ./bench/serve_throughput [--full] [--seed N] [--programs N]
//                            [--workers N] [--requests N]

#include <cstdio>
#include <cstring>

#include "bench/bench_util.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "serve/compile_service.hpp"
#include "serve/model_registry.hpp"

namespace autophase {
namespace {

using namespace serve;

int run(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  std::size_t workers = 4;
  std::size_t requests = args.full ? 256 : 48;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }

  // Workload: a rotation over CHStone-like kernels.
  const auto& names = progen::chstone_benchmark_names();
  const std::size_t num_programs =
      args.programs > 0 ? static_cast<std::size_t>(args.programs) : 3;
  std::vector<std::unique_ptr<ir::Module>> modules;
  for (std::size_t i = 0; i < num_programs; ++i) {
    modules.push_back(progen::build_chstone_like(names[i % names.size()]));
  }

  // Model under test: a PPO-initialised policy (weights deterministic per
  // seed; serving performance does not depend on training quality).
  rl::EnvConfig env_cfg;
  env_cfg.observation = rl::ObservationMode::kActionHistogram;
  env_cfg.episode_length = args.full ? 12 : 5;
  rl::PhaseOrderEnv env({modules[0].get()}, env_cfg);
  rl::PpoConfig ppo;
  ppo.hidden = {64, 64};
  ppo.seed = args.seed;
  const rl::PpoTrainer trainer(env, ppo);

  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("bench", make_artifact(trainer.export_policy(), env_cfg));
  auto eval = std::make_shared<runtime::EvalService>();

  CompileServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = requests;
  CompileService service(registry, eval, cfg);

  const auto make_request = [&](std::size_t i) {
    CompileRequest request;
    request.module = modules[i % modules.size()].get();
    request.model = "bench";
    request.objective = i % 3 == 0 ? Objective::kCyclesTimesArea : Objective::kCycles;
    request.beam_width = 1 + static_cast<int>(i % 2);
    request.priority = static_cast<int>(i % 4);
    return request;
  };

  // Single-threaded reference pass (also warms the evaluation cache exactly
  // the way a steady-state service would be warmed).
  std::vector<Provenance> expected;
  for (std::size_t i = 0; i < requests; ++i) {
    auto response = service.compile_sync(make_request(i));
    if (!response.is_ok()) {
      std::fprintf(stderr, "sync serve failed: %s\n", response.message().c_str());
      return 1;
    }
    expected.push_back(std::move(response.value().provenance));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<CompileService::ResponseFuture> futures;
  futures.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) futures.push_back(service.submit(make_request(i)));
  bool identical = true;
  for (std::size_t i = 0; i < requests; ++i) {
    auto response = futures[i].get();
    if (!response.is_ok()) {
      std::fprintf(stderr, "served request %zu failed: %s\n", i, response.message().c_str());
      return 1;
    }
    identical = identical && response.value().provenance.sequence == expected[i].sequence &&
                response.value().provenance.measured_cycles == expected[i].measured_cycles;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const ServeMetrics metrics = service.metrics();
  bench::JsonObject out;
  out.field("bench", "serve_throughput");
  out.field("requests", static_cast<std::uint64_t>(requests));
  out.field("workers", static_cast<std::uint64_t>(workers));
  out.field("programs", static_cast<std::uint64_t>(modules.size()));
  out.field("wall_seconds", seconds);
  out.field("requests_per_sec", seconds > 0 ? static_cast<double>(requests) / seconds : 0.0);
  out.field("p50_latency_ms", metrics.latency.p50_ms);
  out.field("p95_latency_ms", metrics.latency.p95_ms);
  out.field("mean_latency_ms", metrics.latency.mean_ms);
  out.field("max_queue_depth", static_cast<std::uint64_t>(metrics.max_queue_depth));
  out.field("batched_forwards", metrics.batcher.batches);
  out.field("batched_rows", metrics.batcher.rows);
  out.field("max_batch_rows", static_cast<std::uint64_t>(metrics.batcher.max_batch_rows));
  out.field("completed", static_cast<std::uint64_t>(metrics.completed));
  out.field("failed", static_cast<std::uint64_t>(metrics.failed));
  out.field("serial_identical", identical ? "true" : "false");
  std::printf("%s\n", out.str().c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace autophase

int main(int argc, char** argv) { return autophase::run(argc, argv); }
