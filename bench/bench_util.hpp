// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench binary accepts:
//   --full        paper-scale budgets (hours); default is a fast mode that
//                 preserves the figures' qualitative shape in minutes
//   --seed N      RNG seed (default 1)
// and prints the same rows/series the paper reports, as ASCII tables.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "progen/chstone_like.hpp"
#include "progen/random_program.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace autophase::bench {

struct BenchArgs {
  bool full = false;
  std::uint64_t seed = 1;
  int programs = -1;  // --programs override where applicable

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) args.full = true;
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      }
      if (std::strcmp(argv[i], "--programs") == 0 && i + 1 < argc) {
        args.programs = std::atoi(argv[++i]);
      }
    }
    return args;
  }
};

inline std::string pct(double fraction) { return strf("%+.1f%%", fraction * 100.0); }

/// Improvement over -O3 as the paper plots it.
inline double improvement(std::uint64_t o3, std::uint64_t cycles) {
  return o3 == 0 ? 0.0
                 : (static_cast<double>(o3) - static_cast<double>(cycles)) /
                       static_cast<double>(o3);
}

/// Builds the random-program corpus used for generalisation training.
inline std::vector<std::unique_ptr<ir::Module>> random_corpus(std::size_t count,
                                                              std::uint64_t seed) {
  std::vector<std::unique_ptr<ir::Module>> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    corpus.push_back(progen::generate_filtered_program(seed * 7919 + i));
  }
  return corpus;
}

inline std::vector<const ir::Module*> as_pointers(
    const std::vector<std::unique_ptr<ir::Module>>& modules) {
  std::vector<const ir::Module*> out;
  out.reserve(modules.size());
  for (const auto& m : modules) out.push_back(m.get());
  return out;
}

/// Minimal JSON emission for machine-readable benchmark output (CI trend
/// tracking). Values are either quoted strings, raw numbers, or nested
/// raw JSON built by another JsonObject/JsonArray.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value) {
    return raw(key, "\"" + value + "\"");
  }
  JsonObject& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonObject& field(const std::string& key, double value) {
    return raw(key, strf("%.4f", value));
  }
  JsonObject& field(const std::string& key, std::uint64_t value) {
    return raw(key, strf("%llu", static_cast<unsigned long long>(value)));
  }
  JsonObject& field(const std::string& key, int value) {
    return raw(key, strf("%d", value));
  }
  JsonObject& raw(const std::string& key, const std::string& json) {
    body_ += body_.empty() ? "" : ",";
    body_ += "\"" + key + "\":" + json;
    return *this;
  }
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

class JsonArray {
 public:
  JsonArray& add_raw(const std::string& json) {
    body_ += body_.empty() ? "" : ",";
    body_ += json;
    return *this;
  }
  [[nodiscard]] std::string str() const { return "[" + body_ + "]"; }

 private:
  std::string body_;
};

}  // namespace autophase::bench
