// Closed-loop online-learning harness: brings up a two-node serving fleet,
// routes an incumbent traffic wave, drains provenance over kProvenance,
// fine-tunes a canary from the incumbent on the collected traffic, opens a
// deterministic shadow split, routes a second wave, and lets the Promoter
// take the regret-gated decision. The loop-identity invariant — the decision
// matching an independent evaluation of the same records AND the promoted
// weights landing on every node with the split retired — is reported as
// `promoted_correctly`, which the CI bench-regression gate checks alongside
// throughput. Output is JSON for the bench-trajectory artifact.
//
//   ./bench/online_loop [--full] [--seed N] [--requests N] [--workers N]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench/bench_util.hpp"
#include "learn/collector.hpp"
#include "learn/online_trainer.hpp"
#include "learn/promoter.hpp"
#include "net/server.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "serve/fleet_monitor.hpp"
#include "serve/remote_client.hpp"

namespace autophase {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

int run(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  std::size_t workers = 2;
  std::size_t rounds = args.full ? 8 : 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }

  const auto corpus_modules = bench::random_corpus(6, args.seed);
  const std::vector<const ir::Module*> corpus = bench::as_pointers(corpus_modules);

  rl::EnvConfig env_cfg;
  env_cfg.observation = rl::ObservationMode::kActionHistogram;
  env_cfg.episode_length = args.full ? 8 : 4;
  rl::PhaseOrderEnv env({corpus[0]}, env_cfg);
  rl::PpoConfig ppo;
  ppo.hidden = {16};
  ppo.seed = args.seed;
  rl::PpoTrainer trainer(env, ppo);
  serve::PolicyArtifact incumbent = serve::make_artifact(trainer.export_policy(), env_cfg);

  // A two-node fleet; publishes through A replicate to B.
  net::ServeNodeConfig node_cfg;
  node_cfg.compile.workers = workers;
  net::ServeNode node_a(nullptr, nullptr, node_cfg);
  net::ServeNode node_b(nullptr, nullptr, node_cfg);
  if (!node_a.start().is_ok() || !node_b.start().is_ok()) {
    std::fprintf(stderr, "nodes failed to start\n");
    return 1;
  }
  node_a.add_peer(node_b.endpoint());
  auto client = std::make_shared<serve::RemoteCompileClient>(
      std::vector<net::RemoteEndpoint>{node_a.endpoint(), node_b.endpoint()});
  auto published = client->publish(0, "agent", incumbent);
  if (!published.is_ok()) {
    std::fprintf(stderr, "incumbent publish failed: %s\n", published.message().c_str());
    return 1;
  }

  std::size_t total_requests = 0;
  double wave_seconds = 0.0;
  const auto send_wave = [&]() -> bool {
    const auto t0 = Clock::now();
    for (std::size_t round = 0; round < rounds; ++round) {
      for (const ir::Module* module : corpus) {
        serve::CompileRequest request;
        request.module = module;
        request.model = "agent";
        auto response = client->compile(request);
        if (!response.is_ok()) {
          std::fprintf(stderr, "request failed: %s\n", response.message().c_str());
          return false;
        }
        ++total_requests;
      }
    }
    wave_seconds += std::chrono::duration<double>(Clock::now() - t0).count();
    return true;
  };

  // Wave 1: incumbent-only traffic fills the provenance logs fleet-wide.
  if (!send_wave()) return 1;
  learn::Collector collector(client);
  learn::ProvenanceLog collected(4096);
  auto t = Clock::now();
  learn::CollectReport drained = collector.collect(collected);
  const double collect_ms = ms_since(t);
  const std::size_t wave1_records = drained.fetched;
  auto records = collected.drain(4096);

  // Fine-tune the canary from the incumbent on collected traffic + corpus.
  learn::OnlineTrainerConfig trainer_cfg;
  trainer_cfg.ppo.iterations = args.full ? 6 : 2;
  trainer_cfg.ppo.steps_per_iteration = args.full ? 128 : 32;
  trainer_cfg.ppo.seed = args.seed + 1;
  learn::OnlineTrainer online(std::make_shared<runtime::EvalService>(), trainer_cfg);
  t = Clock::now();
  auto tuned = online.fine_tune(incumbent, records, corpus);
  const double fine_tune_ms = ms_since(t);
  if (!tuned.is_ok()) {
    std::fprintf(stderr, "fine-tune failed: %s\n", tuned.message().c_str());
    return 1;
  }

  // Canary publish + shadow split, then wave 2 under the split.
  if (!client->publish(0, "agent-canary", tuned.value().canary).is_ok()) {
    std::fprintf(stderr, "canary publish failed\n");
    return 1;
  }
  learn::PromotionPolicy policy;
  policy.min_canary_samples = 1;
  policy.min_incumbent_samples = 1;
  // The harness measures the loop, not the decision boundary: generous gates
  // make the verdict a deterministic function of the (seeded) run.
  policy.regret_margin = 1000.0;
  policy.calibration_slack = 1000.0;
  learn::Promoter promoter(client, policy);
  if (!promoter.start_canary("agent", "agent-canary", 0, 0.5).is_ok()) {
    std::fprintf(stderr, "canary start failed\n");
    return 1;
  }
  if (!send_wave()) return 1;
  learn::ProvenanceLog shadow_log(4096);
  drained = collector.collect(shadow_log);
  auto shadow_records = shadow_log.drain(4096);
  std::size_t canary_records = 0;
  for (const auto& record : shadow_records) canary_records += record.canary ? 1 : 0;

  // The verdict, cross-checked against an independent evaluation.
  const learn::PromotionReport expected =
      learn::evaluate_promotion(shadow_records, "agent", "agent-canary", policy);
  t = Clock::now();
  auto decided = promoter.decide(0, "agent", "agent-canary", tuned.value().canary,
                                 shadow_records);
  const double decide_ms = ms_since(t);
  if (!decided.is_ok()) {
    std::fprintf(stderr, "promotion decision failed: %s\n", decided.message().c_str());
    return 1;
  }

  bool promoted_correctly = decided.value().decision == expected.decision &&
                            decided.value().decision == learn::PromotionDecision::kPromote;
  for (net::ServeNode* node : {&node_a, &node_b}) {
    const auto latest = node->registry()->get("agent", 0);
    promoted_correctly = promoted_correctly && latest != nullptr &&
                         latest->version == decided.value().promoted_version &&
                         !node->service().traffic_split("agent").has_value();
  }

  serve::FleetMonitor monitor(client);
  const serve::FleetStats fleet = monitor.poll();

  bench::JsonObject out;
  out.field("bench", "online_loop");
  out.field("requests", static_cast<std::uint64_t>(total_requests));
  out.field("rounds", static_cast<std::uint64_t>(rounds));
  out.field("workers", static_cast<std::uint64_t>(workers));
  out.field("loop_rps",
            wave_seconds > 0 ? static_cast<double>(total_requests) / wave_seconds : 0.0);
  out.field("collect_ms", collect_ms);
  out.field("fine_tune_ms", fine_tune_ms);
  out.field("decide_ms", decide_ms);
  out.field("wave1_records", static_cast<std::uint64_t>(wave1_records));
  out.field("shadow_records", static_cast<std::uint64_t>(shadow_records.size()));
  out.field("canary_records", static_cast<std::uint64_t>(canary_records));
  out.field("ppo_iterations", static_cast<std::uint64_t>(tuned.value().iterations.size()));
  out.field("promoted_version",
            static_cast<std::uint64_t>(decided.value().promoted_version));
  out.field("fleet_promoted", fleet.learn_promoted);
  out.field("promoted_correctly", promoted_correctly ? "true" : "false");
  std::printf("%s\n", out.str().c_str());
  std::fprintf(stderr, "decision: %s (%s)\n",
               learn::promotion_decision_name(decided.value().decision),
               decided.value().reason.c_str());
  return promoted_correctly ? 0 : 1;
}

}  // namespace
}  // namespace autophase

int main(int argc, char** argv) { return autophase::run(argc, argv); }
