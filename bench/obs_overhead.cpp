// Observability-overhead harness: proves instrumentation is cheap enough to
// leave on. Serves the same concurrent compile workload twice through one
// CompileService — once with the process tracer off (production default:
// every span site costs a single relaxed load + branch) and once with
// tracing fully on (spans recorded through queue -> batcher -> decode ->
// eval into the ring) — and gates on the throughput ratio: tracing on must
// stay within 5% of tracing off. Metrics counters/histograms are live in
// both passes; they are lock-free relaxed adds and part of the baseline.
//
// Modes alternate and the best of several repetitions is kept per mode, so
// runner noise hits both sides before the ratio is taken.
//
//   ./bench/obs_overhead [--full] [--seed N] [--requests N] [--workers N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.hpp"
#include "obs/trace.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "serve/compile_service.hpp"
#include "serve/model_registry.hpp"

namespace autophase {
namespace {

using namespace serve;

/// One timed burst of `requests` concurrent submissions; returns rps.
/// Exits the process on a failed request — overhead numbers from a broken
/// run would gate on garbage.
double run_pass(CompileService& service,
                const std::vector<std::unique_ptr<ir::Module>>& modules, std::size_t requests) {
  const auto make_request = [&](std::size_t i) {
    CompileRequest request;
    request.module = modules[i % modules.size()].get();
    request.model = "bench";
    request.beam_width = 1 + static_cast<int>(i % 2);
    request.priority = static_cast<int>(i % 4);
    return request;
  };
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<CompileService::ResponseFuture> futures;
  futures.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) futures.push_back(service.submit(make_request(i)));
  for (std::size_t i = 0; i < requests; ++i) {
    auto response = futures[i].get();
    if (!response.is_ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", i, response.message().c_str());
      std::exit(1);
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
}

int run(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  std::size_t workers = 4;
  std::size_t requests = args.full ? 192 : 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }

  const auto& names = progen::chstone_benchmark_names();
  std::vector<std::unique_ptr<ir::Module>> modules;
  for (std::size_t i = 0; i < 3; ++i) {
    modules.push_back(progen::build_chstone_like(names[i % names.size()]));
  }

  rl::EnvConfig env_cfg;
  env_cfg.observation = rl::ObservationMode::kActionHistogram;
  env_cfg.episode_length = 5;
  rl::PhaseOrderEnv env({modules[0].get()}, env_cfg);
  rl::PpoConfig ppo;
  ppo.hidden = {64, 64};
  ppo.seed = args.seed;
  const rl::PpoTrainer trainer(env, ppo);

  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("bench", make_artifact(trainer.export_policy(), env_cfg));
  auto eval = std::make_shared<runtime::EvalService>();
  CompileServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = requests;
  CompileService service(registry, eval, cfg);

  // Warm pass: faults weights and fills the eval cache, so the measured
  // passes exercise the steady-state serving path the overhead claim is
  // about (queue, batcher, decode, cache hits) rather than first-touch
  // simulator costs.
  obs::tracer().set_enabled(false);
  (void)run_pass(service, modules, requests);

  double off_rps = 0.0;
  double on_rps = 0.0;
  const int reps = args.full ? 5 : 3;
  for (int rep = 0; rep < reps; ++rep) {
    obs::tracer().set_enabled(false);
    off_rps = std::max(off_rps, run_pass(service, modules, requests));
    obs::tracer().set_enabled(true);
    on_rps = std::max(on_rps, run_pass(service, modules, requests));
  }
  const std::uint64_t spans = obs::tracer().recorded();
  obs::tracer().set_enabled(false);
  obs::tracer().clear();

  const double overhead_pct =
      off_rps > 0 ? 100.0 * (off_rps - on_rps) / off_rps : 0.0;
  const bool within_bound = on_rps >= 0.95 * off_rps;

  bench::JsonObject out;
  out.field("bench", "obs_overhead");
  out.field("requests", static_cast<std::uint64_t>(requests));
  out.field("workers", static_cast<std::uint64_t>(workers));
  out.field("reps", static_cast<std::uint64_t>(reps));
  out.field("tracing_off_rps", off_rps);
  out.field("tracing_on_rps", on_rps);
  out.field("overhead_pct", overhead_pct);
  out.field("spans_recorded", spans);
  out.field("overhead_within_bound", within_bound ? "true" : "false");
  std::printf("%s\n", out.str().c_str());
  if (!within_bound) {
    std::fprintf(stderr, "tracing overhead %.1f%% exceeds the 5%% bound\n", overhead_pct);
  }
  return within_bound ? 0 : 1;
}

}  // namespace
}  // namespace autophase

int main(int argc, char** argv) { return autophase::run(argc, argv); }
