// Reproduces Fig. 8: episode-reward-mean learning curves when training PPO
// across a corpus of random programs with (a) filtered features/passes +
// log normalisation (filtered-norm1), (b) filtered + instruction-count
// normalisation (filtered-norm2), (c) all features/passes + technique 2
// (original-norm2). Expected shape: the filtered variants converge faster
// and higher (§6.2).
#include "bench/bench_util.hpp"
#include "core/importance.hpp"
#include "rl/ppo.hpp"

int main(int argc, char** argv) {
  using namespace autophase;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const std::size_t corpus_size =
      args.programs > 0 ? static_cast<std::size_t>(args.programs) : (args.full ? 100 : 10);
  const auto corpus = bench::random_corpus(corpus_size, args.seed);
  const auto programs = bench::as_pointers(corpus);
  std::fprintf(stderr, "[fig8] corpus of %zu random programs ready\n", corpus_size);

  // Importance-based filtering (the paper reuses §4's random-forest output).
  core::ImportanceConfig imp;
  imp.seed = args.seed;
  imp.num_programs = args.full ? 50 : 8;
  imp.target_samples = args.full ? 60000 : 5000;
  const auto spaces = core::filter_spaces(core::run_importance_analysis(imp));
  std::fprintf(stderr, "[fig8] filtered to %zu features, %zu passes\n", spaces.features.size(),
               spaces.actions.size());

  struct Variant {
    std::string name;
    rl::EnvConfig env;
  };
  std::vector<Variant> variants;
  {
    rl::EnvConfig base;
    base.observation = rl::ObservationMode::kBoth;
    base.log_reward = true;  // "reward ... the logarithm of the improvement"
    Variant filtered_norm1{"filtered-norm1", base};
    filtered_norm1.env.normalization = rl::NormalizationMode::kLog;
    filtered_norm1.env.feature_subset = spaces.features;
    filtered_norm1.env.action_subset = spaces.actions;
    Variant filtered_norm2{"filtered-norm2", base};
    filtered_norm2.env.normalization = rl::NormalizationMode::kInstCountRatio;
    filtered_norm2.env.feature_subset = spaces.features;
    filtered_norm2.env.action_subset = spaces.actions;
    Variant original_norm2{"original-norm2", base};
    original_norm2.env.normalization = rl::NormalizationMode::kInstCountRatio;
    variants = {filtered_norm1, filtered_norm2, original_norm2};
  }

  rl::PpoConfig ppo;
  ppo.iterations = args.full ? 80 : 12;
  ppo.steps_per_iteration = args.full ? 1000 : 270;
  ppo.seed = args.seed;

  std::vector<std::vector<rl::IterationStats>> curves;
  for (const Variant& v : variants) {
    rl::PhaseOrderEnv env(programs, v.env);
    rl::PpoTrainer trainer(env, ppo);
    curves.push_back(trainer.train());
    std::fprintf(stderr, "[fig8] trained %s\n", v.name.c_str());
  }

  std::printf("Fig. 8: episode reward mean vs training step (%s mode)\n",
              args.full ? "full" : "fast");
  TextTable table({"step", variants[0].name, variants[1].name, variants[2].name});
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    table.add_row({std::to_string((i + 1) * static_cast<std::size_t>(ppo.steps_per_iteration)),
                   fmt_double(curves[0][i].episode_reward_mean, 3),
                   fmt_double(curves[1][i].episode_reward_mean, 3),
                   fmt_double(curves[2][i].episode_reward_mean, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  auto tail_mean = [](const std::vector<rl::IterationStats>& curve) {
    const std::size_t tail = std::max<std::size_t>(1, curve.size() / 4);
    double s = 0;
    for (std::size_t i = curve.size() - tail; i < curve.size(); ++i) {
      s += curve[i].episode_reward_mean;
    }
    return s / static_cast<double>(tail);
  };
  std::printf("final episode-reward-mean (last quarter): %s=%.3f %s=%.3f %s=%.3f\n",
              variants[0].name.c_str(), tail_mean(curves[0]), variants[1].name.c_str(),
              tail_mean(curves[1]), variants[2].name.c_str(), tail_mean(curves[2]));
  std::printf("paper shape: the filtered variants converge faster and higher than "
              "original-norm2 (even at 20x the steps).\n");
  return 0;
}
