// Ablation studies for the design decisions called out in DESIGN.md §5:
//  1. Cycle estimator: LegUp-style states x dynamic block counts vs a purely
//     static FSM-size metric. Static-only inverts judgments on loop
//     transforms (unrolling grows the FSM but shrinks execution).
//  2. Operation chaining under the 200 MHz clock: without chaining, every
//     combinational op needs its own state, inflating cycle counts and
//     erasing simplifycfg/if-conversion wins.
//  3. Evaluation cache: fraction of environment steps served without a
//     simulator call during a PPO run (the paper's sample-efficiency story
//     depends on the simulator being the scarce resource).
#include "bench/bench_util.hpp"
#include "core/autophase.hpp"
#include "hls/cycle_estimator.hpp"
#include "ir/clone.hpp"
#include "passes/pass.hpp"
#include "passes/pipelines.hpp"
#include "rl/ppo.hpp"

namespace {

using namespace autophase;

std::uint64_t static_states_only(const ir::Module& m) {
  const auto sched = hls::schedule_module(m);
  std::uint64_t total = 0;
  for (const auto& [f, fs] : sched.functions) {
    (void)f;
    total += static_cast<std::uint64_t>(fs.total_states);
  }
  return total;
}

std::uint64_t cycles_no_chaining(const ir::Module& m) {
  // A 1 ns clock leaves no room to chain anything: every op gets its own
  // state, modelling a scheduler without chaining.
  hls::ResourceConstraints rc;
  rc.clock_period_ns = 1.0;
  auto est = hls::profile_cycles(m, rc);
  return est.is_ok() ? est.value().cycles : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  (void)args;

  std::printf("Ablation 1: dynamic-profile estimator vs static FSM size\n");
  TextTable t1({"benchmark", "O3 speedup (dyn est.)", "O3 'speedup' (static only)",
                "unroll verdict dyn", "unroll verdict static"});
  const int unroll_prep[] = {
      passes::PassRegistry::instance().index_of("-mem2reg"),
      passes::PassRegistry::instance().index_of("-loop-simplify"),
      passes::PassRegistry::instance().index_of("-loop-rotate"),
      passes::PassRegistry::instance().index_of("-loop-unroll"),
  };
  for (const auto& name : progen::chstone_benchmark_names()) {
    auto o0 = progen::build_chstone_like(name);
    auto o3 = ir::clone_module(*o0);
    passes::run_o3(*o3);
    const double dyn_speedup = static_cast<double>(core::o0_cycles(*o0)) /
                               static_cast<double>(core::o3_cycles(*o0));
    const double static_speedup = static_cast<double>(static_states_only(*o0)) /
                                  static_cast<double>(static_states_only(*o3));
    // Unroll verdict: does each metric consider rotate+unroll an improvement?
    auto unrolled = ir::clone_module(*o0);
    auto prepped = ir::clone_module(*o0);
    for (int i = 0; i < 3; ++i) passes::apply_pass(*prepped, unroll_prep[i]);
    for (int i = 0; i < 4; ++i) passes::apply_pass(*unrolled, unroll_prep[i]);
    const bool dyn_likes = core::cycles_with_sequence(*o0, {unroll_prep[0], unroll_prep[1],
                                                            unroll_prep[2], unroll_prep[3]}) <
                           core::cycles_with_sequence(*o0, {unroll_prep[0], unroll_prep[1],
                                                            unroll_prep[2]});
    const bool static_likes = static_states_only(*unrolled) < static_states_only(*prepped);
    t1.add_row({name, strf("%.2fx", dyn_speedup), strf("%.2fx", static_speedup),
                dyn_likes ? "improves" : "neutral/worse",
                static_likes ? "improves" : "neutral/worse"});
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("Ablation 2: operation chaining at 200 MHz vs no chaining\n");
  TextTable t2({"benchmark", "cycles (chained)", "cycles (no chaining)", "inflation"});
  for (const auto& name : progen::chstone_benchmark_names()) {
    auto m = progen::build_chstone_like(name);
    passes::run_o3(*m);
    const auto chained = hls::profile_cycles(*m);
    const std::uint64_t unchained = cycles_no_chaining(*m);
    if (!chained.is_ok() || unchained == 0) continue;
    t2.add_row({name, std::to_string(chained.value().cycles), std::to_string(unchained),
                strf("%.2fx", static_cast<double>(unchained) /
                                  static_cast<double>(chained.value().cycles))});
  }
  std::printf("%s\n", t2.render().c_str());

  std::printf("Ablation 3: evaluation-cache effectiveness during PPO training\n");
  {
    auto m = progen::build_chstone_like("gsm");
    rl::EnvConfig cfg;
    cfg.observation = rl::ObservationMode::kActionHistogram;
    rl::PhaseOrderEnv env({m.get()}, cfg);
    rl::PpoConfig ppo;
    ppo.iterations = 6;
    ppo.steps_per_iteration = 135;
    rl::PpoTrainer trainer(env, ppo);
    trainer.train();
    const std::size_t steps = 6 * 135;
    std::printf("  env steps: %zu, simulator calls: %zu, cache hit rate: %.0f%%\n", steps,
                env.samples(),
                100.0 * (1.0 - static_cast<double>(env.samples()) /
                                   static_cast<double>(steps)));
  }
  return 0;
}
