// Micro-benchmark for the runtime::EvalService subsystem: batched parallel
// sequence evaluation over the CHStone-like corpus. Reports, per thread
// count, the wall-clock time, speedup over the 1-thread run, samples, and
// cache hit rate — and verifies that every configuration produces results
// bit-identical to the serial path (same cycles per candidate, same sample
// counts). Emits one JSON line at the end for CI trend tracking.
//
//   --full        larger candidate set
//   --seed N      candidate RNG seed
//   --programs N  number of corpus programs (default 3)

#include <chrono>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "runtime/eval_service.hpp"
#include "search/search.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace autophase {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct RunResult {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  std::size_t samples = 0;
  double hit_rate = 0.0;  // over the warm re-run
  std::vector<std::vector<std::uint64_t>> cycles;  // per program
};

RunResult run_with_threads(const std::vector<const ir::Module*>& programs,
                           const std::vector<std::vector<std::vector<int>>>& candidates,
                           std::size_t threads) {
  ThreadPool pool(threads);
  runtime::EvalServiceConfig cfg;
  cfg.pool = threads > 1 ? &pool : nullptr;
  runtime::EvalService service(cfg);

  RunResult out;
  const auto cold_start = Clock::now();
  for (std::size_t p = 0; p < programs.size(); ++p) {
    out.cycles.push_back(service.evaluate_batch(*programs[p], candidates[p]).cycles);
  }
  out.cold_ms = ms_since(cold_start);
  out.samples = service.samples();

  // Warm re-run: everything short-circuits in the sequence cache.
  const auto warm_start = Clock::now();
  for (std::size_t p = 0; p < programs.size(); ++p) {
    service.evaluate_batch(*programs[p], candidates[p]);
  }
  out.warm_ms = ms_since(warm_start);
  const auto stats = service.stats();
  const std::size_t lookups = stats.hits + stats.misses + stats.sequence_hits;
  out.hit_rate = lookups == 0
                     ? 0.0
                     : static_cast<double>(stats.hits + stats.sequence_hits) /
                           static_cast<double>(lookups);
  return out;
}

}  // namespace
}  // namespace autophase

int main(int argc, char** argv) {
  using namespace autophase;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int program_count = args.programs > 0 ? args.programs : 3;
  const int per_program = args.full ? 256 : 64;

  std::vector<std::unique_ptr<ir::Module>> owned;
  const auto& names = progen::chstone_benchmark_names();
  for (int i = 0; i < program_count; ++i) {
    owned.push_back(progen::build_chstone_like(names[static_cast<std::size_t>(i) % names.size()]));
  }
  const auto programs = bench::as_pointers(owned);

  Rng rng(args.seed);
  std::vector<std::vector<std::vector<int>>> candidates(programs.size());
  for (auto& per : candidates) {
    for (int i = 0; i < per_program; ++i) per.push_back(search::random_sequence(rng, 45));
  }

  std::printf("parallel_eval: %zu programs x %d sequences\n", programs.size(), per_program);
  TextTable table({"threads", "cold ms", "speedup", "warm ms", "samples", "hit rate"});
  bench::JsonArray series;
  RunResult baseline;
  bool identical = true;
  double cold_scaling_4t = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const RunResult r = run_with_threads(programs, candidates, threads);
    if (threads == 1) {
      baseline = r;
    } else {
      identical = identical && r.cycles == baseline.cycles && r.samples == baseline.samples;
    }
    const double speedup = r.cold_ms > 0.0 ? baseline.cold_ms / r.cold_ms : 0.0;
    if (threads == 4) cold_scaling_4t = speedup;
    table.add_row({strf("%zu", threads), strf("%.1f", r.cold_ms), strf("%.2fx", speedup),
                   strf("%.1f", r.warm_ms), strf("%zu", r.samples),
                   strf("%.1f%%", 100.0 * r.hit_rate)});
    bench::JsonObject row;
    row.field("threads", static_cast<std::uint64_t>(threads))
        .field("cold_ms", r.cold_ms)
        .field("speedup", speedup)
        .field("warm_ms", r.warm_ms)
        .field("samples", r.samples)
        .field("hit_rate", r.hit_rate);
    series.add_raw(row.str());
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("results identical across thread counts: %s\n", identical ? "yes" : "NO");

  bench::JsonObject summary;
  // hardware_threads lets the CI gate skip the cold_scaling_4t threshold on
  // hosts that cannot physically scale (the dev container has one core; the
  // 4-thread run there measures contention, not speedup).
  summary.field("bench", "parallel_eval")
      .field("programs", static_cast<std::uint64_t>(programs.size()))
      .field("sequences_per_program", per_program)
      .field("identical", identical ? "true" : "false")
      .field("hardware_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .field("cold_scaling_4t", cold_scaling_4t)
      .raw("runs", series.str());
  std::printf("JSON: %s\n", summary.str().c_str());
  return identical ? 0 : 1;
}
