#!/usr/bin/env python3
"""Docs drift gate: keep README.md + docs/ honest against the code.

Two checks, both cheap enough to run on every CI build:

  * every *relative* markdown link in README.md and docs/*.md must resolve
    to an existing file (anchors are stripped; http(s)/mailto links are
    trusted — CI must not flake on the public internet), and
  * every wire verb in the `MsgType` enum of src/net/frame.hpp must appear
    by name in docs/wire-protocol.md — adding a verb without documenting it
    is exactly the drift this gate exists to catch.

Usage:
    check_docs.py [--repo-root DIR]
"""

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Enum entries like "kCompile = 2," inside the MsgType block.
MSG_TYPE_RE = re.compile(r"^\s*(k[A-Za-z0-9]+)\s*=\s*\d+\s*,", re.MULTILINE)


def markdown_files(root):
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def strip_code_blocks(text):
    """Fenced code blocks hold example paths, not navigation links."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_links(root):
    failures = []
    checked = 0
    for md in markdown_files(root):
        body = strip_code_blocks(md.read_text(encoding="utf-8"))
        for target in LINK_RE.findall(body):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            checked += 1
            if not resolved.exists():
                failures.append(f"{md.relative_to(root)}: broken link -> {target}")
    print(f"  links: {checked} relative link(s) checked across {len(markdown_files(root))} files")
    return failures


def check_wire_verbs(root):
    frame = root / "src" / "net" / "frame.hpp"
    doc = root / "docs" / "wire-protocol.md"
    failures = []
    if not frame.exists():
        return [f"missing {frame.relative_to(root)}"]
    if not doc.exists():
        return [f"missing {doc.relative_to(root)} (wire verbs must be documented)"]
    header = frame.read_text(encoding="utf-8")
    enum = re.search(r"enum class MsgType[^{]*\{(.*?)\}", header, re.DOTALL)
    if enum is None:
        return [f"{frame.relative_to(root)}: could not find the MsgType enum"]
    verbs = MSG_TYPE_RE.findall(enum.group(1))
    if not verbs:
        return [f"{frame.relative_to(root)}: MsgType enum parsed to zero verbs"]
    documented = doc.read_text(encoding="utf-8")
    for verb in verbs:
        if verb not in documented:
            failures.append(
                f"docs/wire-protocol.md: wire verb '{verb}' (src/net/frame.hpp) is undocumented"
            )
    print(f"  verbs: {len(verbs)} MsgType entr(ies) checked against docs/wire-protocol.md")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    args = parser.parse_args()
    root = args.repo_root.resolve()

    failures = check_links(root) + check_wire_verbs(root)
    if failures:
        print("\ndocs drift gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ndocs drift gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
