#!/usr/bin/env python3
"""Bench-regression gate: compare a CI bench run against committed baselines.

The benches emit one JSON object each (the `bench-trajectory` artifact).
This gate is deliberately generous — micro-VM runners are noisy — and only
fails on signals that are almost certainly real:

  * a throughput metric (any key ending in `_rps`) dropping below
    baseline / THRESHOLD (default 2.0, i.e. a >2x regression), or
  * a request-identity invariant (`serial_identical`, `counts_consistent`)
    reporting anything but "true" in the *new* run, or
  * the cold-path parallel speedup (`cold_scaling_4t`) falling below the
    absolute `--scaling-floor` — checked only when the reporting host has
    at least 4 hardware threads (single-core containers measure contention,
    not scaling, so the gate prints a skip note there), or
  * a bench that has a committed baseline but produced no output / lost a
    metric the baseline has.

Latency quantiles and cache counters are trend data, not gates: they ride
along in the artifact but are never compared here.

Usage:
    check_bench.py [--baseline-dir bench/baseline] [--threshold 2.0] OUT_DIR
    check_bench.py --benches parallel_eval,serve_throughput OUT_DIR
    check_bench.py --update OUT_DIR     # merge OUT_DIR's metrics into baselines

`--update` merges: for a bench with an existing baseline, only the metrics
present in the new JSON are refreshed; metrics the new run did not produce
keep their committed values (a partial run must not wipe them). A metric the
baseline has never seen is an error unless `--allow-new-keys` is given —
that is the tripwire for accidental schema drift. A bench with no baseline
file yet is seeded wholesale.
"""

import argparse
import json
import pathlib
import sys

IDENTITY_KEYS = (
    "serial_identical",
    "counts_consistent",
    "identical",
    "overhead_within_bound",
    "promoted_correctly",
    "front_dominates_scalar",
    "fronts_nondominated",
    "membership_converged",
)


def is_true(value):
    return value is True or value == "true"


def load(path):
    """Parse the bench JSON object out of a (possibly tee'd) output stream.

    Benches print human-readable tables before the JSON line, and CI captures
    the whole stream; the JSON object is the last line that parses.
    """
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    for line in reversed(lines):
        brace = line.find("{")
        if brace < 0:
            continue
        try:
            return json.loads(line[brace:])  # tolerate a "JSON: " style prefix
        except json.JSONDecodeError:
            continue
    raise ValueError(f"{path}: no JSON object found in bench output")


def check_scaling(name, new, scaling_floor):
    """Gate on the absolute 4-thread cold-eval speedup, when measurable."""
    if "cold_scaling_4t" not in new:
        return []
    threads = int(new.get("hardware_threads", 0))
    value = float(new["cold_scaling_4t"])
    if threads < 4:
        print(
            f"  {name}: cold_scaling_4t={value:.2f}x SKIPPED "
            f"(host has {threads} hardware threads; need >= 4 to measure scaling)"
        )
        return []
    status = "ok"
    failures = []
    if value < scaling_floor:
        failures.append(
            f"{name}: cold_scaling_4t {value:.2f}x below floor {scaling_floor:g}x "
            f"on a {threads}-thread host"
        )
        status = "REGRESSED"
    print(
        f"  {name}: cold_scaling_4t={value:.2f}x floor={scaling_floor:g}x "
        f"({threads} hardware threads) [{status}]"
    )
    return failures


def check_file(name, baseline, new, threshold, scaling_floor):
    """Returns a list of failure strings for one bench."""
    failures = []
    for key in IDENTITY_KEYS:
        if key in baseline or key in new:
            if key not in new:
                failures.append(f"{name}: identity metric '{key}' missing from new output")
            elif not is_true(new[key]):
                failures.append(f"{name}: request-identity mismatch ({key}={new[key]!r})")
    for key, old_value in baseline.items():
        if not (key.endswith("_rps") or key == "requests_per_sec"):
            continue
        if key not in new:
            failures.append(f"{name}: throughput metric '{key}' missing from new output")
            continue
        new_value, old_value = float(new[key]), float(old_value)
        floor = old_value / threshold
        status = "ok"
        if old_value > 0 and new_value < floor:
            failures.append(
                f"{name}: {key} regressed >{threshold:g}x "
                f"(baseline {old_value:.1f}, now {new_value:.1f}, floor {floor:.1f})"
            )
            status = "REGRESSED"
        print(
            f"  {name}: {key} baseline={old_value:.1f} now={new_value:.1f} "
            f"floor={floor:.1f} [{status}]"
        )
    failures.extend(check_scaling(name, new, scaling_floor))
    return failures


def update_baselines(args):
    """Merge OUT_DIR's metrics into the committed baselines (see docstring)."""
    args.baseline_dir.mkdir(parents=True, exist_ok=True)
    errors = []
    for path in sorted(args.out_dir.glob("*.json")):
        if args.benches and path.stem not in args.benches:
            continue
        new = load(path)  # refuse to commit malformed baselines
        target = args.baseline_dir / path.name
        if not target.exists():
            with open(target, "w", encoding="utf-8") as f:
                json.dump(new, f, separators=(",", ":"))
                f.write("\n")
            print(f"baseline seeded: {target}")
            continue
        baseline = load(target)
        unknown = sorted(set(new) - set(baseline))
        if unknown and not args.allow_new_keys:
            errors.append(
                f"{path.name}: new metrics not in baseline: {', '.join(unknown)} "
                f"(pass --allow-new-keys if the schema change is intentional)"
            )
            continue
        updated = sorted(k for k in new if k in baseline and baseline[k] != new[k])
        baseline.update(new)  # only keys the new run produced; the rest survive
        with open(target, "w", encoding="utf-8") as f:
            json.dump(baseline, f, separators=(",", ":"))
            f.write("\n")
        added = f", added: {', '.join(unknown)}" if unknown else ""
        print(f"baseline updated: {target} (refreshed: {', '.join(updated) or 'none'}{added})")
    if errors:
        print("\nbaseline update FAILED:", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out_dir", type=pathlib.Path, help="directory with fresh bench JSON")
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=pathlib.Path("bench/baseline"))
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail only when throughput drops below baseline/THRESHOLD")
    parser.add_argument("--scaling-floor", type=float, default=2.0,
                        help="minimum cold_scaling_4t on hosts with >= 4 hardware threads")
    parser.add_argument("--benches", type=lambda s: set(s.split(",")), default=None,
                        help="comma-separated bench names; only these are checked/updated "
                             "(for partial runs like the perf job)")
    parser.add_argument("--update", action="store_true",
                        help="merge OUT_DIR's metrics into the baselines")
    parser.add_argument("--allow-new-keys", action="store_true",
                        help="with --update: accept metrics the baseline does not have yet")
    args = parser.parse_args()

    if args.update:
        return update_baselines(args)

    baselines = sorted(args.baseline_dir.glob("*.json"))
    if args.benches:
        baselines = [p for p in baselines if p.stem in args.benches]
    if not baselines:
        print(f"error: no baselines in {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = []
    for baseline_path in baselines:
        name = baseline_path.name
        new_path = args.out_dir / name
        if not new_path.exists():
            failures.append(f"{name}: bench output missing from {args.out_dir}")
            continue
        failures.extend(check_file(name, load(baseline_path), load(new_path),
                                   args.threshold, args.scaling_floor))

    # Note truly-unseeded outputs only; files skipped by --benches or with a
    # baseline on disk are not "missing".
    seeded = {p.name for p in args.baseline_dir.glob("*.json")}
    extra = {p.name for p in args.out_dir.glob("*.json")} - seeded
    if args.benches:
        extra = {n for n in extra if pathlib.Path(n).stem in args.benches}
    for name in sorted(extra):
        print(f"  note: {name} has no baseline yet (run with --update to seed it)")

    if failures:
        print("\nbench-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench-regression gate passed ({len(baselines)} benches checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
