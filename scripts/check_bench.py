#!/usr/bin/env python3
"""Bench-regression gate: compare a CI bench run against committed baselines.

The benches emit one JSON object each (the `bench-trajectory` artifact).
This gate is deliberately generous — micro-VM runners are noisy — and only
fails on signals that are almost certainly real:

  * a throughput metric (any key ending in `_rps`) dropping below
    baseline / THRESHOLD (default 2.0, i.e. a >2x regression), or
  * a request-identity invariant (`serial_identical`, `counts_consistent`)
    reporting anything but "true" in the *new* run, or
  * a bench that has a committed baseline but produced no output / lost a
    metric the baseline has.

Latency quantiles and cache counters are trend data, not gates: they ride
along in the artifact but are never compared here.

Usage:
    check_bench.py [--baseline-dir bench/baseline] [--threshold 2.0] OUT_DIR
    check_bench.py --update OUT_DIR     # reseed baselines from OUT_DIR
"""

import argparse
import json
import pathlib
import shutil
import sys

IDENTITY_KEYS = (
    "serial_identical",
    "counts_consistent",
    "identical",
    "overhead_within_bound",
    "promoted_correctly",
)


def is_true(value):
    return value is True or value == "true"


def load(path):
    """Parse the bench JSON object out of a (possibly tee'd) output stream.

    Benches print human-readable tables before the JSON line, and CI captures
    the whole stream; the JSON object is the last line that parses.
    """
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    for line in reversed(lines):
        brace = line.find("{")
        if brace < 0:
            continue
        try:
            return json.loads(line[brace:])  # tolerate a "JSON: " style prefix
        except json.JSONDecodeError:
            continue
    raise ValueError(f"{path}: no JSON object found in bench output")


def check_file(name, baseline, new, threshold):
    """Returns a list of failure strings for one bench."""
    failures = []
    for key in IDENTITY_KEYS:
        if key in baseline or key in new:
            if key not in new:
                failures.append(f"{name}: identity metric '{key}' missing from new output")
            elif not is_true(new[key]):
                failures.append(f"{name}: request-identity mismatch ({key}={new[key]!r})")
    for key, old_value in baseline.items():
        if not (key.endswith("_rps") or key == "requests_per_sec"):
            continue
        if key not in new:
            failures.append(f"{name}: throughput metric '{key}' missing from new output")
            continue
        new_value, old_value = float(new[key]), float(old_value)
        floor = old_value / threshold
        status = "ok"
        if old_value > 0 and new_value < floor:
            failures.append(
                f"{name}: {key} regressed >{threshold:g}x "
                f"(baseline {old_value:.1f}, now {new_value:.1f}, floor {floor:.1f})"
            )
            status = "REGRESSED"
        print(
            f"  {name}: {key} baseline={old_value:.1f} now={new_value:.1f} "
            f"floor={floor:.1f} [{status}]"
        )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out_dir", type=pathlib.Path, help="directory with fresh bench JSON")
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=pathlib.Path("bench/baseline"))
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail only when throughput drops below baseline/THRESHOLD")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baselines with OUT_DIR's results")
    args = parser.parse_args()

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in sorted(args.out_dir.glob("*.json")):
            load(path)  # refuse to commit malformed baselines
            shutil.copy(path, args.baseline_dir / path.name)
            print(f"baseline updated: {args.baseline_dir / path.name}")
        return 0

    baselines = sorted(args.baseline_dir.glob("*.json"))
    if not baselines:
        print(f"error: no baselines in {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = []
    for baseline_path in baselines:
        name = baseline_path.name
        new_path = args.out_dir / name
        if not new_path.exists():
            failures.append(f"{name}: bench output missing from {args.out_dir}")
            continue
        failures.extend(check_file(name, load(baseline_path), load(new_path), args.threshold))

    extra = {p.name for p in args.out_dir.glob("*.json")} - {p.name for p in baselines}
    for name in sorted(extra):
        print(f"  note: {name} has no baseline yet (run with --update to seed it)")

    if failures:
        print("\nbench-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench-regression gate passed ({len(baselines)} benches checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
