file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_eval.dir/bench/parallel_eval.cpp.o"
  "CMakeFiles/bench_parallel_eval.dir/bench/parallel_eval.cpp.o.d"
  "bench/parallel_eval"
  "bench/parallel_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
