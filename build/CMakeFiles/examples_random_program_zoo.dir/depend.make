# Empty dependencies file for examples_random_program_zoo.
# This may be replaced when dependencies are built.
