file(REMOVE_RECURSE
  "CMakeFiles/examples_random_program_zoo.dir/examples/random_program_zoo.cpp.o"
  "CMakeFiles/examples_random_program_zoo.dir/examples/random_program_zoo.cpp.o.d"
  "examples/random_program_zoo"
  "examples/random_program_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_random_program_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
