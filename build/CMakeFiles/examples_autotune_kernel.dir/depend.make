# Empty dependencies file for examples_autotune_kernel.
# This may be replaced when dependencies are built.
