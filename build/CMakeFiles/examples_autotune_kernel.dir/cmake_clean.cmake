file(REMOVE_RECURSE
  "CMakeFiles/examples_autotune_kernel.dir/examples/autotune_kernel.cpp.o"
  "CMakeFiles/examples_autotune_kernel.dir/examples/autotune_kernel.cpp.o.d"
  "examples/autotune_kernel"
  "examples/autotune_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_autotune_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
