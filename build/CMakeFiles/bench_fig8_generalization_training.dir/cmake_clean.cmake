file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_generalization_training.dir/bench/fig8_generalization_training.cpp.o"
  "CMakeFiles/bench_fig8_generalization_training.dir/bench/fig8_generalization_training.cpp.o.d"
  "bench/fig8_generalization_training"
  "bench/fig8_generalization_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_generalization_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
