# Empty dependencies file for bench_fig8_generalization_training.
# This may be replaced when dependencies are built.
