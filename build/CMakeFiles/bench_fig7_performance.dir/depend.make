# Empty dependencies file for bench_fig7_performance.
# This may be replaced when dependencies are built.
