file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_performance.dir/bench/fig7_performance.cpp.o"
  "CMakeFiles/bench_fig7_performance.dir/bench/fig7_performance.cpp.o.d"
  "bench/fig7_performance"
  "bench/fig7_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
