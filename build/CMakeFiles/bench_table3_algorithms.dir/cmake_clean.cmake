file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_algorithms.dir/bench/table3_algorithms.cpp.o"
  "CMakeFiles/bench_table3_algorithms.dir/bench/table3_algorithms.cpp.o.d"
  "bench/table3_algorithms"
  "bench/table3_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
