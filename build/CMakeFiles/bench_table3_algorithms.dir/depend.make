# Empty dependencies file for bench_table3_algorithms.
# This may be replaced when dependencies are built.
