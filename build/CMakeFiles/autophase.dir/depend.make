# Empty dependencies file for autophase.
# This may be replaced when dependencies are built.
