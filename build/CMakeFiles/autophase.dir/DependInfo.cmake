
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autophase.cpp" "CMakeFiles/autophase.dir/src/core/autophase.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/core/autophase.cpp.o.d"
  "/root/repo/src/core/importance.cpp" "CMakeFiles/autophase.dir/src/core/importance.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/core/importance.cpp.o.d"
  "/root/repo/src/features/features.cpp" "CMakeFiles/autophase.dir/src/features/features.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/features/features.cpp.o.d"
  "/root/repo/src/hls/cycle_estimator.cpp" "CMakeFiles/autophase.dir/src/hls/cycle_estimator.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/hls/cycle_estimator.cpp.o.d"
  "/root/repo/src/hls/scheduler.cpp" "CMakeFiles/autophase.dir/src/hls/scheduler.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/hls/scheduler.cpp.o.d"
  "/root/repo/src/hls/timing.cpp" "CMakeFiles/autophase.dir/src/hls/timing.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/hls/timing.cpp.o.d"
  "/root/repo/src/hls/verilog.cpp" "CMakeFiles/autophase.dir/src/hls/verilog.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/hls/verilog.cpp.o.d"
  "/root/repo/src/interp/interpreter.cpp" "CMakeFiles/autophase.dir/src/interp/interpreter.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/interp/interpreter.cpp.o.d"
  "/root/repo/src/ir/basic_block.cpp" "CMakeFiles/autophase.dir/src/ir/basic_block.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/basic_block.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "CMakeFiles/autophase.dir/src/ir/builder.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/builder.cpp.o.d"
  "/root/repo/src/ir/cfg.cpp" "CMakeFiles/autophase.dir/src/ir/cfg.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/cfg.cpp.o.d"
  "/root/repo/src/ir/clone.cpp" "CMakeFiles/autophase.dir/src/ir/clone.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/clone.cpp.o.d"
  "/root/repo/src/ir/dominators.cpp" "CMakeFiles/autophase.dir/src/ir/dominators.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/dominators.cpp.o.d"
  "/root/repo/src/ir/function.cpp" "CMakeFiles/autophase.dir/src/ir/function.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/function.cpp.o.d"
  "/root/repo/src/ir/instruction.cpp" "CMakeFiles/autophase.dir/src/ir/instruction.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/instruction.cpp.o.d"
  "/root/repo/src/ir/loop_info.cpp" "CMakeFiles/autophase.dir/src/ir/loop_info.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/loop_info.cpp.o.d"
  "/root/repo/src/ir/module.cpp" "CMakeFiles/autophase.dir/src/ir/module.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/module.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "CMakeFiles/autophase.dir/src/ir/printer.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/printer.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "CMakeFiles/autophase.dir/src/ir/type.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/type.cpp.o.d"
  "/root/repo/src/ir/value.cpp" "CMakeFiles/autophase.dir/src/ir/value.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/value.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "CMakeFiles/autophase.dir/src/ir/verifier.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ir/verifier.cpp.o.d"
  "/root/repo/src/ml/distributions.cpp" "CMakeFiles/autophase.dir/src/ml/distributions.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ml/distributions.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "CMakeFiles/autophase.dir/src/ml/matrix.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ml/matrix.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "CMakeFiles/autophase.dir/src/ml/mlp.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ml/mlp.cpp.o.d"
  "/root/repo/src/ml/optimizer.cpp" "CMakeFiles/autophase.dir/src/ml/optimizer.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ml/optimizer.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "CMakeFiles/autophase.dir/src/ml/random_forest.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/ml/random_forest.cpp.o.d"
  "/root/repo/src/passes/cfg_passes.cpp" "CMakeFiles/autophase.dir/src/passes/cfg_passes.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/passes/cfg_passes.cpp.o.d"
  "/root/repo/src/passes/ipo.cpp" "CMakeFiles/autophase.dir/src/passes/ipo.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/passes/ipo.cpp.o.d"
  "/root/repo/src/passes/loops.cpp" "CMakeFiles/autophase.dir/src/passes/loops.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/passes/loops.cpp.o.d"
  "/root/repo/src/passes/mem.cpp" "CMakeFiles/autophase.dir/src/passes/mem.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/passes/mem.cpp.o.d"
  "/root/repo/src/passes/pipelines.cpp" "CMakeFiles/autophase.dir/src/passes/pipelines.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/passes/pipelines.cpp.o.d"
  "/root/repo/src/passes/registry.cpp" "CMakeFiles/autophase.dir/src/passes/registry.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/passes/registry.cpp.o.d"
  "/root/repo/src/passes/scalar.cpp" "CMakeFiles/autophase.dir/src/passes/scalar.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/passes/scalar.cpp.o.d"
  "/root/repo/src/passes/util.cpp" "CMakeFiles/autophase.dir/src/passes/util.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/passes/util.cpp.o.d"
  "/root/repo/src/progen/chstone_like.cpp" "CMakeFiles/autophase.dir/src/progen/chstone_like.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/progen/chstone_like.cpp.o.d"
  "/root/repo/src/progen/codegen.cpp" "CMakeFiles/autophase.dir/src/progen/codegen.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/progen/codegen.cpp.o.d"
  "/root/repo/src/progen/random_program.cpp" "CMakeFiles/autophase.dir/src/progen/random_program.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/progen/random_program.cpp.o.d"
  "/root/repo/src/rl/a3c.cpp" "CMakeFiles/autophase.dir/src/rl/a3c.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/rl/a3c.cpp.o.d"
  "/root/repo/src/rl/env.cpp" "CMakeFiles/autophase.dir/src/rl/env.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/rl/env.cpp.o.d"
  "/root/repo/src/rl/es.cpp" "CMakeFiles/autophase.dir/src/rl/es.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/rl/es.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "CMakeFiles/autophase.dir/src/rl/ppo.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/rl/ppo.cpp.o.d"
  "/root/repo/src/rl/rollout.cpp" "CMakeFiles/autophase.dir/src/rl/rollout.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/rl/rollout.cpp.o.d"
  "/root/repo/src/runtime/eval_service.cpp" "CMakeFiles/autophase.dir/src/runtime/eval_service.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/runtime/eval_service.cpp.o.d"
  "/root/repo/src/runtime/vec_env.cpp" "CMakeFiles/autophase.dir/src/runtime/vec_env.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/runtime/vec_env.cpp.o.d"
  "/root/repo/src/search/genetic.cpp" "CMakeFiles/autophase.dir/src/search/genetic.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/search/genetic.cpp.o.d"
  "/root/repo/src/search/opentuner.cpp" "CMakeFiles/autophase.dir/src/search/opentuner.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/search/opentuner.cpp.o.d"
  "/root/repo/src/search/pso.cpp" "CMakeFiles/autophase.dir/src/search/pso.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/search/pso.cpp.o.d"
  "/root/repo/src/search/random_greedy.cpp" "CMakeFiles/autophase.dir/src/search/random_greedy.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/search/random_greedy.cpp.o.d"
  "/root/repo/src/support/log.cpp" "CMakeFiles/autophase.dir/src/support/log.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/support/log.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "CMakeFiles/autophase.dir/src/support/rng.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/support/rng.cpp.o.d"
  "/root/repo/src/support/str.cpp" "CMakeFiles/autophase.dir/src/support/str.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/support/str.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/autophase.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/support/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "CMakeFiles/autophase.dir/src/support/thread_pool.cpp.o" "gcc" "CMakeFiles/autophase.dir/src/support/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
