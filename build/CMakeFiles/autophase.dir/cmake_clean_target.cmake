file(REMOVE_RECURSE
  "libautophase.a"
)
