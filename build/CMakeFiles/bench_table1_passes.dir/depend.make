# Empty dependencies file for bench_table1_passes.
# This may be replaced when dependencies are built.
