file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_passes.dir/bench/table1_passes.cpp.o"
  "CMakeFiles/bench_table1_passes.dir/bench/table1_passes.cpp.o.d"
  "bench/table1_passes"
  "bench/table1_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
