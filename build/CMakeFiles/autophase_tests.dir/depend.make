# Empty dependencies file for autophase_tests.
# This may be replaced when dependencies are built.
