
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "CMakeFiles/autophase_tests.dir/tests/test_core.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_core.cpp.o.d"
  "/root/repo/tests/test_features.cpp" "CMakeFiles/autophase_tests.dir/tests/test_features.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_features.cpp.o.d"
  "/root/repo/tests/test_hls.cpp" "CMakeFiles/autophase_tests.dir/tests/test_hls.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_hls.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "CMakeFiles/autophase_tests.dir/tests/test_integration.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_integration.cpp.o.d"
  "/root/repo/tests/test_interp.cpp" "CMakeFiles/autophase_tests.dir/tests/test_interp.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_interp.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "CMakeFiles/autophase_tests.dir/tests/test_ir.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_ir.cpp.o.d"
  "/root/repo/tests/test_ml.cpp" "CMakeFiles/autophase_tests.dir/tests/test_ml.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_ml.cpp.o.d"
  "/root/repo/tests/test_pass_semantics.cpp" "CMakeFiles/autophase_tests.dir/tests/test_pass_semantics.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_pass_semantics.cpp.o.d"
  "/root/repo/tests/test_passes.cpp" "CMakeFiles/autophase_tests.dir/tests/test_passes.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_passes.cpp.o.d"
  "/root/repo/tests/test_progen.cpp" "CMakeFiles/autophase_tests.dir/tests/test_progen.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_progen.cpp.o.d"
  "/root/repo/tests/test_rl.cpp" "CMakeFiles/autophase_tests.dir/tests/test_rl.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_rl.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "CMakeFiles/autophase_tests.dir/tests/test_runtime.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_runtime.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "CMakeFiles/autophase_tests.dir/tests/test_search.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_search.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "CMakeFiles/autophase_tests.dir/tests/test_support.cpp.o" "gcc" "CMakeFiles/autophase_tests.dir/tests/test_support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/autophase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
