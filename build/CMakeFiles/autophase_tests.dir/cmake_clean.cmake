file(REMOVE_RECURSE
  "CMakeFiles/autophase_tests.dir/tests/test_core.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_core.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_features.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_features.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_hls.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_hls.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_integration.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_integration.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_interp.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_interp.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_ir.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_ir.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_ml.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_ml.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_pass_semantics.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_pass_semantics.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_passes.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_passes.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_progen.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_progen.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_rl.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_rl.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_runtime.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_runtime.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_search.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_search.cpp.o.d"
  "CMakeFiles/autophase_tests.dir/tests/test_support.cpp.o"
  "CMakeFiles/autophase_tests.dir/tests/test_support.cpp.o.d"
  "autophase_tests"
  "autophase_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autophase_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
