# Empty dependencies file for bench_sec62_random_generalization.
# This may be replaced when dependencies are built.
