file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_random_generalization.dir/bench/sec62_random_generalization.cpp.o"
  "CMakeFiles/bench_sec62_random_generalization.dir/bench/sec62_random_generalization.cpp.o.d"
  "bench/sec62_random_generalization"
  "bench/sec62_random_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_random_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
