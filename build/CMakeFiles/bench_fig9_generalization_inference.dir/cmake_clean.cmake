file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_generalization_inference.dir/bench/fig9_generalization_inference.cpp.o"
  "CMakeFiles/bench_fig9_generalization_inference.dir/bench/fig9_generalization_inference.cpp.o.d"
  "bench/fig9_generalization_inference"
  "bench/fig9_generalization_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_generalization_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
