# Empty dependencies file for bench_fig9_generalization_inference.
# This may be replaced when dependencies are built.
