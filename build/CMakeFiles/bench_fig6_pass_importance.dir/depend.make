# Empty dependencies file for bench_fig6_pass_importance.
# This may be replaced when dependencies are built.
