file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pass_importance.dir/bench/fig6_pass_importance.cpp.o"
  "CMakeFiles/bench_fig6_pass_importance.dir/bench/fig6_pass_importance.cpp.o.d"
  "bench/fig6_pass_importance"
  "bench/fig6_pass_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pass_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
