file(REMOVE_RECURSE
  "CMakeFiles/examples_quickstart.dir/examples/quickstart.cpp.o"
  "CMakeFiles/examples_quickstart.dir/examples/quickstart.cpp.o.d"
  "examples/quickstart"
  "examples/quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
