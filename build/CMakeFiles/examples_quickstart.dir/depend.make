# Empty dependencies file for examples_quickstart.
# This may be replaced when dependencies are built.
