file(REMOVE_RECURSE
  "CMakeFiles/examples_phase_ordering_motivation.dir/examples/phase_ordering_motivation.cpp.o"
  "CMakeFiles/examples_phase_ordering_motivation.dir/examples/phase_ordering_motivation.cpp.o.d"
  "examples/phase_ordering_motivation"
  "examples/phase_ordering_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_phase_ordering_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
