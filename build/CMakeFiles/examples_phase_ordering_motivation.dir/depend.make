# Empty dependencies file for examples_phase_ordering_motivation.
# This may be replaced when dependencies are built.
